"""``validate_states``: dtype-aware checks and bounded-memory validation.

The historical implementation called ``np.isin(matrix, (0, 1))`` — a second
full ``(n, d)`` boolean allocation — and ``np.diff(..., prepend=0)`` — a
third.  Validation now scans in bounded row blocks with dtype-aware entry
checks (min/max reductions for integer inputs), so its peak incremental
allocation is a small fraction of the matrix, regression-tested here with
``tracemalloc``.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.core.vectorized import validate_states

_PARAMS = ProtocolParams(n=100, d=16, k=3, epsilon=1.0)


def _alternating(n: int, d: int, dtype) -> np.ndarray:
    # Each user holds 0 then flips once at a staggered time: <= 1 change.
    states = np.zeros((n, d), dtype=dtype)
    flip_at = np.arange(n) % d
    columns = np.arange(d)[np.newaxis, :]
    states[columns >= flip_at[:, np.newaxis]] = 1
    return states


class TestDtypeAwareChecks:
    @pytest.mark.parametrize(
        "dtype", [np.bool_, np.int8, np.int64, np.uint8, np.float64]
    )
    def test_accepts_valid_matrices_of_any_dtype(self, dtype):
        states = _alternating(_PARAMS.n, _PARAMS.d, dtype)
        validate_states(states, _PARAMS)

    @pytest.mark.parametrize("bad_value", [2, -1])
    @pytest.mark.parametrize("dtype", [np.int8, np.int64])
    def test_rejects_out_of_range_integers(self, bad_value, dtype):
        states = _alternating(_PARAMS.n, _PARAMS.d, dtype)
        states[3, 5] = bad_value
        with pytest.raises(ValueError, match="0 or 1"):
            validate_states(states, _PARAMS)

    def test_rejects_fractional_floats(self):
        states = _alternating(_PARAMS.n, _PARAMS.d, np.float64)
        states[0, 0] = 0.5  # min/max would pass; exactness must not
        with pytest.raises(ValueError, match="0 or 1"):
            validate_states(states, _PARAMS)

    def test_rejects_change_budget_violations_in_any_block(self):
        states = _alternating(5000, _PARAMS.d, np.int8)
        params = ProtocolParams(n=5000, d=_PARAMS.d, k=3, epsilon=1.0)
        states[4321] = np.arange(_PARAMS.d) % 2  # flips every period
        with pytest.raises(ValueError, match="exceeding k"):
            validate_states(states, params)

    def test_counts_the_implicit_zero_start(self):
        # A user starting at 1 spends one change even with no later flips.
        params = ProtocolParams(n=2, d=4, k=1, epsilon=1.0)
        states = np.array([[1, 1, 1, 1], [1, 0, 0, 0]], dtype=np.int8)
        validate_states(states[:1], params, rows=1)
        with pytest.raises(ValueError, match="exceeding k"):
            validate_states(states, params)

    def test_rows_override_for_chunk_validation(self):
        chunk = _alternating(7, _PARAMS.d, np.int8)
        validate_states(chunk, _PARAMS, rows=7)
        with pytest.raises(ValueError, match="disagrees with params"):
            validate_states(chunk, _PARAMS, rows=8)
        with pytest.raises(ValueError, match="disagrees with params"):
            validate_states(chunk, _PARAMS)  # default expects params.n rows

    def test_rejects_non_2d_input(self):
        with pytest.raises(ValueError, match="2-D"):
            validate_states(np.zeros(16, dtype=np.int8), _PARAMS)


class TestBoundedMemory:
    def test_no_full_size_temporary(self):
        """Peak incremental allocation stays far below one matrix copy."""
        n, d = 16_384, 512
        params = ProtocolParams(n=n, d=d, k=d, epsilon=1.0)
        states = _alternating(n, d, np.int8)
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            before, _ = tracemalloc.get_traced_memory()
            validate_states(states, params)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        incremental = peak - before
        # The historical isin+diff path allocated >= 2x the matrix; the
        # blockwise scan must stay under a quarter of one copy.
        assert incremental < states.nbytes // 4, (
            f"validation allocated {incremental / 1e6:.1f} MB against a "
            f"{states.nbytes / 1e6:.1f} MB matrix"
        )

    def test_historical_full_size_check_would_fail_this_budget(self):
        """The bound above genuinely discriminates: isin alone busts it."""
        n, d = 16_384, 512
        states = _alternating(n, d, np.int8)
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            before, _ = tracemalloc.get_traced_memory()
            assert np.isin(states, (0, 1)).all()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak - before >= states.nbytes // 4

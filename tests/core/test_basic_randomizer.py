"""Tests for Warner's basic randomizer R (Equation 14)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.basic_randomizer import (
    BasicRandomizer,
    basic_c_gap,
    flip_probability,
    keep_probability,
)


class TestProbabilities:
    def test_flip_probability_formula(self):
        assert flip_probability(1.0) == pytest.approx(1.0 / (math.e + 1.0))

    def test_keep_plus_flip_is_one(self):
        for eps in (0.01, 0.5, 1.0, 3.0):
            assert flip_probability(eps) + keep_probability(eps) == pytest.approx(1.0)

    def test_flip_below_half(self):
        for eps in (0.01, 0.5, 1.0):
            assert 0.0 < flip_probability(eps) < 0.5

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            flip_probability(0.0)

    def test_c_gap_is_tanh(self):
        for eps in (0.1, 0.5, 1.0):
            expected = (math.exp(eps) - 1) / (math.exp(eps) + 1)
            assert basic_c_gap(eps) == pytest.approx(expected, rel=1e-12)

    def test_c_gap_equals_keep_minus_flip(self):
        eps = 0.7
        assert basic_c_gap(eps) == pytest.approx(
            keep_probability(eps) - flip_probability(eps)
        )

    def test_c_gap_rejects_non_positive(self):
        with pytest.raises(ValueError):
            basic_c_gap(-0.1)


class TestRandomize:
    def test_output_in_domain(self, rng):
        randomizer = BasicRandomizer(1.0)
        for zeta in (-1, 1):
            assert randomizer.randomize(zeta, rng) in (-1, 1)

    def test_rejects_bad_input(self, rng):
        with pytest.raises(ValueError):
            BasicRandomizer(1.0).randomize(0, rng)

    def test_empirical_keep_rate(self, rng):
        randomizer = BasicRandomizer(1.0)
        trials = 20_000
        kept = sum(randomizer.randomize(1, rng) == 1 for _ in range(trials))
        expected = keep_probability(1.0)
        standard_error = math.sqrt(expected * (1 - expected) / trials)
        assert abs(kept / trials - expected) < 5 * standard_error

    def test_empirical_gap_matches_c_gap(self, rng):
        randomizer = BasicRandomizer(0.5)
        trials = 40_000
        outputs = np.array([randomizer.randomize(-1, rng) for _ in range(trials)])
        empirical_gap = float((outputs == -1).mean() - (outputs == 1).mean())
        assert empirical_gap == pytest.approx(randomizer.c_gap, abs=0.02)


class TestRandomizeVector:
    def test_shape_preserved(self, rng):
        randomizer = BasicRandomizer(1.0)
        values = np.ones(100, dtype=np.int8)
        assert randomizer.randomize_vector(values, rng).shape == (100,)

    def test_output_signs_only(self, rng):
        randomizer = BasicRandomizer(1.0)
        values = np.array([1, -1] * 50, dtype=np.int8)
        output = randomizer.randomize_vector(values, rng)
        assert set(np.unique(output).tolist()) <= {-1, 1}

    def test_rejects_zeros(self, rng):
        with pytest.raises(ValueError):
            BasicRandomizer(1.0).randomize_vector(np.array([1, 0]), rng)

    def test_rejects_non_unit_floats_and_nan(self, rng):
        with pytest.raises(ValueError):
            BasicRandomizer(1.0).randomize_vector(np.array([1.0, 0.5]), rng)
        with pytest.raises(ValueError):
            BasicRandomizer(1.0).randomize_vector(np.array([1.0, np.nan]), rng)

    def test_accepts_exact_unit_floats(self, rng):
        output = BasicRandomizer(1.0).randomize_vector(np.array([1.0, -1.0]), rng)
        assert set(np.unique(output).tolist()) <= {-1, 1}

    def test_rejects_complex_unit_modulus(self, rng):
        # |1j| == 1, so the single-pass abs check alone would admit it; the
        # dtype guard must keep the {-1,+1} input contract exact.
        with pytest.raises(ValueError):
            BasicRandomizer(1.0).randomize_vector(np.array([1j, -1j]), rng)

    def test_matrix_input(self, rng):
        randomizer = BasicRandomizer(1.0)
        values = np.ones((10, 5), dtype=np.int8)
        assert randomizer.randomize_vector(values, rng).shape == (10, 5)

    def test_statistical_flip_rate(self, rng):
        randomizer = BasicRandomizer(1.0)
        values = np.ones(50_000, dtype=np.int8)
        output = randomizer.randomize_vector(values, rng)
        flip_rate = float((output == -1).mean())
        expected = randomizer.flip_probability
        standard_error = math.sqrt(expected * (1 - expected) / values.size)
        assert abs(flip_rate - expected) < 5 * standard_error

"""Tests for ProtocolParams validation and derived quantities."""

from __future__ import annotations

import math

import pytest

from repro.core.params import ProtocolParams


class TestValidation:
    def test_valid_construction(self):
        params = ProtocolParams(n=100, d=16, k=2, epsilon=0.5, beta=0.1)
        assert params.n == 100
        assert params.beta == 0.1

    def test_d_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=10, d=12, k=2, epsilon=1.0)

    def test_k_cannot_exceed_d(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=10, d=4, k=5, epsilon=1.0)

    def test_epsilon_positive(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=10, d=4, k=2, epsilon=0.0)

    def test_beta_in_unit_interval(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=10, d=4, k=2, epsilon=1.0, beta=1.0)

    def test_n_positive(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=0, d=4, k=2, epsilon=1.0)

    def test_epsilon_above_one_allowed_by_default(self):
        params = ProtocolParams(n=10, d=4, k=2, epsilon=2.0)
        assert params.epsilon == 2.0


class TestDerivedQuantities:
    def test_log_d(self):
        assert ProtocolParams(n=10, d=256, k=2, epsilon=1.0).log_d == 8

    def test_num_orders(self):
        assert ProtocolParams(n=10, d=256, k=2, epsilon=1.0).num_orders == 9

    def test_eps_tilde(self):
        params = ProtocolParams(n=10, d=16, k=4, epsilon=1.0)
        assert params.eps_tilde == pytest.approx(1.0 / 10.0)


class TestTheoremAssumptions:
    def test_satisfied_for_large_n(self):
        params = ProtocolParams(n=10**6, d=16, k=2, epsilon=1.0)
        params.check_theorem_assumptions()
        assert params.satisfies_theorem_assumptions()

    def test_violated_for_tiny_n(self):
        params = ProtocolParams(n=4, d=1024, k=8, epsilon=0.1)
        assert not params.satisfies_theorem_assumptions()
        with pytest.raises(ValueError):
            params.check_theorem_assumptions()

    def test_epsilon_above_one_fails_assumptions(self):
        params = ProtocolParams(n=10**6, d=16, k=2, epsilon=1.5)
        assert not params.satisfies_theorem_assumptions()

    def test_boundary_formula(self):
        params = ProtocolParams(n=10**6, d=16, k=2, epsilon=1.0)
        lhs = (1 / params.epsilon) * params.log_d * math.sqrt(
            params.k * math.log(params.d / params.beta)
        )
        assert lhs <= math.sqrt(params.n)


class TestWithUpdates:
    def test_updates_field(self):
        params = ProtocolParams(n=100, d=16, k=2, epsilon=1.0)
        bigger = params.with_updates(n=200)
        assert bigger.n == 200
        assert bigger.d == params.d

    def test_updates_revalidate(self):
        params = ProtocolParams(n=100, d=16, k=2, epsilon=1.0)
        with pytest.raises(ValueError):
            params.with_updates(d=7)

    def test_original_unchanged(self):
        params = ProtocolParams(n=100, d=16, k=2, epsilon=1.0)
        params.with_updates(k=3)
        assert params.k == 2

"""Tests for Algorithm 1 (client) and Algorithm 2 (server)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.client import Client, Report
from repro.core.future_rand import FutureRandFamily
from repro.core.server import Server
from repro.core.simple_randomizer import SimpleRandomizerFamily
from repro.dyadic.intervals import DyadicInterval


@pytest.fixture
def family() -> FutureRandFamily:
    return FutureRandFamily(k=2, epsilon=1.0)


class TestClient:
    def test_order_in_range(self, family):
        for seed in range(30):
            client = Client(0, d=16, family=family, rng=np.random.default_rng(seed))
            assert 0 <= client.order <= 4

    def test_order_distribution_uniform(self, family):
        orders = [
            Client(0, d=8, family=family, rng=np.random.default_rng(seed)).order
            for seed in range(2000)
        ]
        counts = np.bincount(orders, minlength=4)
        # 4 orders, each expected 500; 5-sigma band ~ 110
        assert all(abs(count - 500) < 150 for count in counts)

    def test_reports_exactly_at_multiples(self, family, rng):
        client = Client(0, d=16, family=family, rng=rng)
        period = 1 << client.order
        states = [0] * 16
        for t in range(1, 17):
            report = client.step(states[t - 1])
            if t % period == 0:
                assert report is not None
                assert report.index == t // period
                assert report.order == client.order
            else:
                assert report is None

    def test_report_count_is_length(self, family, rng):
        client = Client(3, d=16, family=family, rng=rng)
        reports = client.run(np.zeros(16, dtype=np.int8))
        assert len(reports) == client.report_length
        assert all(report.user_id == 3 for report in reports)

    def test_rejects_bad_state(self, family, rng):
        client = Client(0, d=4, family=family, rng=rng)
        with pytest.raises(ValueError):
            client.step(2)

    def test_rejects_steps_beyond_horizon(self, family, rng):
        client = Client(0, d=4, family=family, rng=rng)
        for state in (0, 0, 1, 1):
            client.step(state)
        with pytest.raises(RuntimeError):
            client.step(0)

    def test_run_requires_full_sequence(self, family, rng):
        client = Client(0, d=8, family=family, rng=rng)
        with pytest.raises(ValueError):
            client.run(np.zeros(4, dtype=np.int8))

    def test_c_gap_exposed(self, family, rng):
        client = Client(0, d=4, family=family, rng=rng)
        assert client.c_gap == family.c_gap

    def test_sparse_user_within_budget_works(self, family, rng):
        """A user with k changes must never trip the randomizer's budget,
        whatever order was sampled (Observation 3.6)."""
        states = np.array([0, 1, 1, 1, 1, 0, 0, 0], dtype=np.int8)  # 2 changes
        for seed in range(40):
            client = Client(0, d=8, family=family, rng=np.random.default_rng(seed))
            client.run(states)  # must not raise


class TestServer:
    def test_register_validates_order(self):
        server = Server(8, c_gap=0.5)
        with pytest.raises(ValueError):
            server.register(0, 4)
        server.register(0, 3)
        assert server.registered_users == 1

    def test_register_conflicting_order(self):
        server = Server(8, c_gap=0.5)
        server.register(0, 1)
        with pytest.raises(ValueError):
            server.register(0, 2)
        server.register(0, 1)  # idempotent re-registration is fine

    def test_receive_requires_registration(self):
        server = Server(8, c_gap=0.5)
        with pytest.raises(KeyError):
            server.receive(Report(user_id=9, order=0, index=1, bit=1))

    def test_receive_validates_order_and_bit(self):
        server = Server(8, c_gap=0.5)
        server.register(0, 1)
        with pytest.raises(ValueError):
            server.receive(Report(0, order=2, index=1, bit=1))
        with pytest.raises(ValueError):
            server.receive(Report(0, order=1, index=1, bit=0))

    def test_online_clock_rejects_future_reports(self):
        server = Server(8, c_gap=0.5)
        server.register(0, 1)
        server.advance_to(2)
        server.receive(Report(0, order=1, index=1, bit=1))
        with pytest.raises(ValueError):
            server.receive(Report(0, order=1, index=2, bit=1))  # emitted at t=4

    def test_clock_cannot_go_backwards(self):
        server = Server(8, c_gap=0.5)
        server.advance_to(5)
        with pytest.raises(ValueError):
            server.advance_to(3)

    def test_estimate_scaling(self):
        """Hand-checkable: d=4 (3 orders), c_gap=0.5 -> scale = 3/0.5 = 6."""
        server = Server(4, c_gap=0.5)
        server.register(0, 0)
        server.advance_to(4)
        for index in range(1, 5):
            server.receive(Report(0, order=0, index=index, bit=1))
        # a_hat[1] uses C(1) = {I_{0,1}} -> 6 * 1
        assert server.estimate(1) == pytest.approx(6.0)
        # a_hat[3] uses C(3) = {I_{1,1}, I_{0,3}}; I_{1,1} empty -> 6 * (0 + 1)
        assert server.estimate(3) == pytest.approx(6.0)

    def test_partial_sum_estimate(self):
        server = Server(4, c_gap=0.5)
        server.register(0, 1)
        server.advance_to(2)
        server.receive(Report(0, order=1, index=1, bit=-1))
        assert server.partial_sum_estimate(DyadicInterval(1, 1)) == pytest.approx(-6.0)

    def test_estimate_range_validation(self):
        server = Server(4, c_gap=0.5)
        with pytest.raises(ValueError):
            server.estimate(0)
        with pytest.raises(ValueError):
            server.estimate(5)

    def test_rejects_bad_c_gap(self):
        with pytest.raises(ValueError):
            Server(4, c_gap=0.0)

    def test_receive_all_advances_clock(self, family):
        server = Server(4, c_gap=0.5)
        server.register(0, 1)
        reports = [Report(0, 1, 1, 1), Report(0, 1, 2, -1)]
        server.receive_all(reports)
        assert server.time == 4
        assert server.reports_received == 2

    def test_receive_all_unregistered_user_leaves_clock_untouched(self):
        """Regression: the emission time of an unregistered user's report must
        not be computed from a defaulted order — the clock advanced to a wrong
        time before receive() raised, corrupting server state."""
        server = Server(8, c_gap=0.5)
        server.register(0, 2)
        server.advance_to(4)
        # user 7 never registered; with the old `.get(user_id, 0)` default the
        # emission time would read 3 << 0 = 3 (no advance) or, for a larger
        # index, advance the clock before the KeyError.
        with pytest.raises(KeyError):
            server.receive_all([Report(7, order=0, index=6, bit=1)])
        assert server.time == 4
        assert server.reports_received == 0

    def test_receive_all_order_mismatch_leaves_clock_untouched(self):
        """A registered user reporting a different order must be rejected
        before the clock moves: the emission time computed from the
        registered order would be wrong for the report."""
        server = Server(8, c_gap=0.5)
        server.register(0, 2)
        server.advance_to(1)
        with pytest.raises(ValueError):
            server.receive_all([Report(0, order=0, index=2, bit=1)])
        assert server.time == 1
        assert server.reports_received == 0

    def test_receive_all_mixed_batch_stops_before_mutation(self):
        server = Server(8, c_gap=0.5)
        server.register(0, 0)
        good = Report(0, order=0, index=1, bit=1)
        bad = Report(9, order=0, index=8, bit=1)
        with pytest.raises(KeyError):
            server.receive_all([good, bad])
        # The good report landed (clock at 1); the bad one mutated nothing.
        assert server.time == 1
        assert server.reports_received == 1

    def test_receive_batch_accumulates_column_sum(self):
        server = Server(4, c_gap=0.5)
        server.advance_to(2)
        count = server.receive_batch(1, 1, np.array([1, 1, -1, 1], dtype=np.int8))
        assert count == 4
        assert server.reports_received == 4
        # scale = (1 + log2 4) / 0.5 = 6; column sum = 2.
        assert server.partial_sum_estimate(DyadicInterval(1, 1)) == pytest.approx(
            6.0 * 2.0
        )

    def test_receive_batch_matches_individual_receives(self):
        bits = np.array([1, -1, 1, 1, -1], dtype=np.int8)
        batched = Server(8, c_gap=0.5)
        batched.advance_to(4)
        batched.receive_batch(2, 1, bits)
        individual = Server(8, c_gap=0.5)
        for user, _bit in enumerate(bits):
            individual.register(user, 2)
        individual.advance_to(4)
        for user, bit in enumerate(bits):
            individual.receive(Report(user, order=2, index=1, bit=int(bit)))
        assert batched.estimate(4) == pytest.approx(individual.estimate(4))
        assert batched.reports_received == individual.reports_received

    def test_receive_batch_respects_online_clock(self):
        server = Server(8, c_gap=0.5)
        server.advance_to(2)
        with pytest.raises(ValueError):
            server.receive_batch(2, 1, np.array([1], dtype=np.int8))  # time 4 > 2

    def test_receive_batch_validates_inputs(self):
        server = Server(4, c_gap=0.5)
        server.advance_to(4)
        with pytest.raises(ValueError):
            server.receive_batch(5, 1, np.array([1]))  # order beyond log2 d
        with pytest.raises(ValueError):
            server.receive_batch(0, 0, np.array([1]))  # index below 1
        with pytest.raises(ValueError):
            server.receive_batch(0, 5, np.array([1]))  # beyond horizon
        with pytest.raises(ValueError):
            server.receive_batch(0, 1, np.array([1, 0]))  # bit not in {-1, +1}
        with pytest.raises(ValueError):
            server.receive_batch(0, 1, np.ones((2, 2)))  # not 1-D

    def test_receive_batch_empty_is_noop(self):
        server = Server(4, c_gap=0.5)
        server.advance_to(4)
        assert server.receive_batch(0, 1, np.array([], dtype=np.int8)) == 0
        assert server.reports_received == 0

    def test_all_estimates_matches_per_period_estimates(self):
        """The vectorized prefix-decomposition path must reproduce the
        per-period decompose_prefix walk exactly."""
        server = Server(8, c_gap=0.5)
        rng_local = np.random.default_rng(0)
        for t in range(1, 9):
            server.advance_to(t)
            for order in range(4):
                if t % (1 << order) == 0:
                    bits = rng_local.choice([-1, 1], size=5).astype(np.int8)
                    server.receive_batch(order, t >> order, bits)
        expected = np.array([server.estimate(t) for t in range(1, 9)])
        np.testing.assert_allclose(server.all_estimates(), expected)

    def test_duplicate_reports_rejected_by_default(self):
        server = Server(4, c_gap=0.5)
        server.register(0, 1)
        server.advance_to(2)
        server.receive(Report(0, order=1, index=1, bit=1))
        with pytest.raises(ValueError):
            server.receive(Report(0, order=1, index=1, bit=-1))

    def test_duplicate_rejection_can_be_disabled(self):
        server = Server(4, c_gap=0.5, reject_duplicates=False)
        server.register(0, 1)
        server.advance_to(2)
        server.receive(Report(0, order=1, index=1, bit=1))
        server.receive(Report(0, order=1, index=1, bit=1))
        assert server.reports_received == 2

    def test_distinct_indices_not_flagged_as_duplicates(self):
        server = Server(4, c_gap=0.5)
        server.register(0, 0)
        server.register(1, 0)
        server.advance_to(2)
        server.receive(Report(0, order=0, index=1, bit=1))
        server.receive(Report(1, order=0, index=1, bit=1))
        server.receive(Report(0, order=0, index=2, bit=1))
        assert server.reports_received == 3


class TestClientServerLoop:
    def test_estimator_unbiased_on_static_population(self):
        """300 users all holding 1 from t=1: the mean estimate at t=d must be
        near n (unbiasedness, Eq. 12), using the simple randomizer family for
        speed."""
        n, d = 300, 8
        family = SimpleRandomizerFamily(k=1, epsilon=1.0)
        estimates = []
        for trial in range(30):
            rng = np.random.default_rng(1000 + trial)
            server = Server(d, family.c_gap)
            clients = [Client(u, d, family, rng) for u in range(n)]
            for client in clients:
                server.register(client.user_id, client.order)
            for t in range(1, d + 1):
                server.advance_to(t)
                for client in clients:
                    report = client.step(1)
                    if report is not None:
                        server.receive(report)
            estimates.append(server.estimate(d))
        mean = float(np.mean(estimates))
        standard_error = float(np.std(estimates, ddof=1) / np.sqrt(len(estimates)))
        assert abs(mean - n) < 4 * standard_error + 1e-9

"""Regression tests for the online-clock enforcement and aggregate validation.

The historical ``Server._check_emission`` read ``if self._time and
emission_time > self._time``, so a server whose clock was never advanced
(``_time == 0``) accepted *every* report — the exact gap a driver that
forgets ``advance_to`` falls into.  These tests pin the fix: the clock is
enforced unconditionally, offline tree-building opts in explicitly with
``enforce_clock=False``, and ``receive_aggregate`` validates totals by exact
integer arithmetic (byte-stable for in-range callers, loud for NaN/inf and
parity violations).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.client import Report
from repro.core.server import Server


class TestUnconditionalClock:
    def test_receive_at_time_zero_is_rejected(self):
        """The historical _time==0 bypass: a fresh server must reject reports."""
        server = Server(8, c_gap=0.5)
        server.register(0, 1)
        with pytest.raises(ValueError, match="advance_to"):
            server.receive(Report(0, order=1, index=1, bit=1))

    def test_receive_batch_at_time_zero_is_rejected(self):
        server = Server(8, c_gap=0.5)
        with pytest.raises(ValueError, match="advance_to"):
            server.receive_batch(0, 1, np.array([1, -1], dtype=np.int8))

    def test_receive_aggregate_at_time_zero_is_rejected(self):
        server = Server(8, c_gap=0.5)
        with pytest.raises(ValueError, match="advance_to"):
            server.receive_aggregate(0, 1, total=2, count=4)

    def test_reports_accepted_once_clock_is_opened(self):
        server = Server(8, c_gap=0.5)
        server.register(0, 1)
        server.advance_to(2)
        assert server.receive(Report(0, order=1, index=1, bit=1)) is None

    def test_enforce_clock_false_opts_out(self):
        """Offline tree-building accepts any emission time without advancing."""
        server = Server(8, c_gap=0.5, enforce_clock=False)
        server.register(0, 1)
        server.receive(Report(0, order=1, index=4, bit=1))  # emitted at t=8
        assert server.time == 0

    def test_enforce_clock_false_still_checks_horizon(self):
        server = Server(8, c_gap=0.5, enforce_clock=False)
        with pytest.raises(ValueError):
            server.receive_aggregate(0, 9, total=0, count=2)

    def test_offline_and_online_agree_after_full_horizon(self):
        """The opt-out changes admission timing, never the estimates."""
        online = Server(4, c_gap=0.5)
        offline = Server(4, c_gap=0.5, enforce_clock=False)
        online.advance_to(4)
        for index in range(1, 5):
            online.receive_aggregate(0, index, total=3, count=5)
            offline.receive_aggregate(0, index, total=3, count=5)
        offline.advance_to(4)
        assert np.array_equal(online.all_estimates(), offline.all_estimates())


class TestReceiveAggregateValidation:
    def _server(self, d: int = 8) -> Server:
        server = Server(d, c_gap=0.5)
        server.advance_to(d)
        return server

    def test_boundary_totals_accepted(self):
        for total in (-4, -2, 0, 2, 4):
            server = self._server()
            server.receive_aggregate(0, 1, total=total, count=4)

    def test_total_beyond_count_rejected(self):
        server = self._server()
        with pytest.raises(ValueError, match="not a feasible sum"):
            server.receive_aggregate(0, 1, total=5, count=4)
        with pytest.raises(ValueError, match="not a feasible sum"):
            server.receive_aggregate(0, 1, total=-5, count=4)

    def test_parity_violation_rejected(self):
        """count=4 reports of +-1 can only sum to an even total."""
        server = self._server()
        with pytest.raises(ValueError, match="not a feasible sum"):
            server.receive_aggregate(0, 1, total=3, count=4)

    def test_non_integral_float_rejected(self):
        server = self._server()
        with pytest.raises(ValueError, match="finite integer"):
            server.receive_aggregate(0, 1, total=1.5, count=4)

    @pytest.mark.parametrize("total", [math.nan, math.inf, -math.inf])
    def test_nan_and_inf_rejected(self, total):
        server = self._server()
        with pytest.raises(ValueError, match="finite integer"):
            server.receive_aggregate(0, 1, total=total, count=4)

    def test_large_integer_totals_validate_exactly(self):
        """2^53-adjacent totals: exact integer arithmetic, no float parity lies.

        float(2**53 + 1) == float(2**53), so the old float-based check would
        have mis-validated parity here; the integer path keeps it exact.
        """
        count = 2**53 + 1
        server = self._server()
        server.receive_aggregate(0, 1, total=2**53 + 1, count=count)
        server = self._server()
        with pytest.raises(ValueError, match="not a feasible sum"):
            server.receive_aggregate(0, 2, total=2**53, count=count)  # parity

    def test_numpy_integer_and_integral_float_are_byte_stable(self):
        """In-range callers get identical tree state whatever scalar type."""
        variants = [2, np.int64(2), 2.0, np.float64(2.0)]
        estimates = []
        for total in variants:
            server = self._server()
            server.receive_aggregate(0, 1, total=total, count=4)
            estimates.append(server.all_estimates())
        for other in estimates[1:]:
            assert np.array_equal(other, estimates[0])

    def test_negative_count_rejected_and_zero_count_is_noop(self):
        server = self._server()
        with pytest.raises(ValueError, match="count"):
            server.receive_aggregate(0, 1, total=0, count=-1)
        assert server.receive_aggregate(0, 1, total=0, count=0) == 0
        assert server.reports_received == 0


class TestAggregateSourceDedup:
    def test_duplicate_source_rejected(self):
        server = Server(8, c_gap=0.5)
        server.advance_to(8)
        server.receive_aggregate(0, 1, total=2, count=4, source=("b", 0))
        with pytest.raises(ValueError, match="duplicate aggregate"):
            server.receive_aggregate(0, 1, total=2, count=4, source=("b", 0))

    def test_distinct_sources_and_slots_accepted(self):
        server = Server(8, c_gap=0.5)
        server.advance_to(8)
        server.receive_aggregate(0, 1, total=2, count=4, source=("b", 0))
        server.receive_aggregate(0, 1, total=2, count=4, source=("b", 1))
        server.receive_aggregate(0, 2, total=2, count=4, source=("b", 0))

    def test_sourceless_calls_never_deduplicated(self):
        server = Server(8, c_gap=0.5)
        server.advance_to(8)
        delivered = server.receive_aggregate(0, 1, total=2, count=4)
        delivered += server.receive_aggregate(0, 1, total=2, count=4)
        assert delivered == 8

    def test_reject_duplicates_false_folds_both_copies(self):
        dedup = Server(8, c_gap=0.5)
        folding = Server(8, c_gap=0.5, reject_duplicates=False)
        for server in (dedup, folding):
            server.advance_to(8)
            server.receive_aggregate(0, 1, total=4, count=4, source=("b", 0))
        folding.receive_aggregate(0, 1, total=4, count=4, source=("b", 0))
        assert folding.all_estimates()[0] > dedup.all_estimates()[0]

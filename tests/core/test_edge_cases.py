"""Edge-case tests: degenerate horizons, extreme sparsity, tiny populations."""

from __future__ import annotations

import numpy as np

from repro.core.annulus import AnnulusLaw
from repro.core.client import Client
from repro.core.future_rand import FutureRandFamily
from repro.core.params import ProtocolParams
from repro.core.protocol import run_online
from repro.core.server import Server
from repro.core.vectorized import run_batch
from repro.dyadic.intervals import decompose_prefix, interval_set


class TestHorizonOne:
    """d = 1: a single period, a single order, L = 1."""

    def test_interval_machinery(self):
        assert len(interval_set(1)) == 1
        assert [(i.order, i.index) for i in decompose_prefix(1)] == [(0, 1)]

    def test_params(self):
        params = ProtocolParams(n=50, d=1, k=1, epsilon=1.0)
        assert params.num_orders == 1
        assert params.log_d == 0

    def test_client_reports_once(self, rng):
        family = FutureRandFamily(k=1, epsilon=1.0)
        client = Client(0, d=1, family=family, rng=rng)
        assert client.order == 0
        report = client.step(1)
        assert report is not None and report.index == 1

    def test_batch_protocol_runs(self):
        params = ProtocolParams(n=500, d=1, k=1, epsilon=1.0)
        states = np.ones((500, 1), dtype=np.int8)
        trials = [
            run_batch(states, params, np.random.default_rng(t)).estimates[0]
            for t in range(30)
        ]
        mean = float(np.mean(trials))
        standard_error = float(np.std(trials, ddof=1) / np.sqrt(30))
        assert abs(mean - 500) < 4 * standard_error + 1e-9

    def test_online_protocol_runs(self):
        params = ProtocolParams(n=20, d=1, k=1, epsilon=1.0)
        states = np.zeros((20, 1), dtype=np.int8)
        result = run_online(states, params, np.random.default_rng(0))
        assert result.estimates.shape == (1,)


class TestKEqualsD:
    """k = d: every period may be a change (no sparsity advantage left)."""

    def test_alternating_user_accepted(self):
        params = ProtocolParams(n=10, d=8, k=8, epsilon=1.0)
        states = np.tile(
            np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=np.int8), (10, 1)
        )
        result = run_batch(states, params, np.random.default_rng(0))
        assert result.estimates.shape == (8,)

    def test_annulus_law_valid(self):
        law = AnnulusLaw.for_future_rand(k=8, epsilon=1.0)
        assert law.c_gap > 0


class TestSingleUser:
    def test_n_one(self):
        params = ProtocolParams(n=1, d=4, k=2, epsilon=1.0)
        states = np.array([[0, 1, 1, 0]], dtype=np.int8)
        result = run_batch(states, params, np.random.default_rng(0))
        assert result.estimates.shape == (4,)

    def test_server_with_no_reports_estimates_zero(self):
        server = Server(4, c_gap=0.5)
        server.advance_to(4)
        assert server.estimate(4) == 0.0


class TestAllZeroAndAllChanged:
    def test_all_zero_population(self, rng):
        params = ProtocolParams(n=200, d=16, k=2, epsilon=1.0)
        states = np.zeros((200, 16), dtype=np.int8)
        result = run_batch(states, params, rng)
        assert (result.true_counts == 0).all()

    def test_everyone_flips_at_t1(self, rng):
        params = ProtocolParams(n=200, d=16, k=1, epsilon=1.0)
        states = np.ones((200, 16), dtype=np.int8)
        result = run_batch(states, params, rng)
        assert (result.true_counts == 200).all()


class TestEpsilonExtremes:
    def test_tiny_epsilon(self):
        law = AnnulusLaw.for_future_rand(k=4, epsilon=1e-4)
        assert 0 < law.c_gap < 1e-4
        assert law.privacy_log_ratio() <= 1e-4 + 1e-12

    def test_epsilon_above_one_still_runs_outside_guarantee(self):
        """The protocol executes for eps > 1 (Lemma 5.2's analysis does not
        cover it; the library allows it but Theorem assumptions flag it)."""
        params = ProtocolParams(n=100, d=8, k=2, epsilon=2.0)
        assert not params.satisfies_theorem_assumptions()
        states = np.zeros((100, 8), dtype=np.int8)
        result = run_batch(states, params, np.random.default_rng(0))
        assert result.estimates.shape == (8,)

"""Tests for the Example 4.2 independent randomizer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.simple_randomizer import SimpleRandomizer, SimpleRandomizerFamily


class TestScalar:
    def test_outputs_are_signs(self, rng):
        randomizer = SimpleRandomizer(length=6, k=3, epsilon=1.0, rng=rng)
        for value in (0, 1, -1):
            assert randomizer.randomize(value) in (-1, 1)

    def test_c_gap_formula(self):
        randomizer = SimpleRandomizer(length=4, k=4, epsilon=1.0, rng=None)
        expected = (math.exp(0.25) - 1) / (math.exp(0.25) + 1)
        assert randomizer.c_gap == pytest.approx(expected, rel=1e-12)

    def test_length_exhaustion(self, rng):
        randomizer = SimpleRandomizer(length=1, k=1, epsilon=1.0, rng=rng)
        randomizer.randomize(0)
        with pytest.raises(RuntimeError):
            randomizer.randomize(0)

    def test_sparsity_violation(self, rng):
        randomizer = SimpleRandomizer(length=5, k=1, epsilon=1.0, rng=rng)
        randomizer.randomize(1)
        with pytest.raises(RuntimeError):
            randomizer.randomize(1)

    def test_rejects_bad_value(self, rng):
        randomizer = SimpleRandomizer(length=5, k=2, epsilon=1.0, rng=rng)
        with pytest.raises(ValueError):
            randomizer.randomize(3)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            SimpleRandomizer(length=0, k=1, epsilon=1.0)
        with pytest.raises(ValueError):
            SimpleRandomizer(length=1, k=1, epsilon=0.0)

    def test_empirical_gap(self):
        trials = 40_000
        rng = np.random.default_rng(3)
        hits = 0
        for _ in range(trials):
            randomizer = SimpleRandomizer(length=1, k=2, epsilon=1.0, rng=rng)
            hits += randomizer.randomize(1) == 1
        gap = 2.0 * hits / trials - 1.0
        expected = math.tanh(0.25)
        assert abs(gap - expected) < 4 * (2.0 / math.sqrt(trials))


class TestFamily:
    def test_constants(self):
        family = SimpleRandomizerFamily(k=4, epsilon=1.0)
        assert family.name == "simple_rr"
        assert family.c_gap == pytest.approx(math.tanh(0.125), rel=1e-12)

    def test_spawn(self, rng):
        family = SimpleRandomizerFamily(k=2, epsilon=0.5)
        randomizer = family.spawn(8, rng)
        assert randomizer.length == 8
        assert randomizer.sparsity == 2

    def test_matrix_path_shape(self, rng):
        family = SimpleRandomizerFamily(k=2, epsilon=1.0)
        values = np.zeros((10, 6), dtype=np.int8)
        values[:, 0] = 1
        output = family.randomize_matrix(values, rng)
        assert output.shape == (10, 6)
        assert set(np.unique(output).tolist()) <= {-1, 1}

    def test_matrix_rejects_dense(self, rng):
        family = SimpleRandomizerFamily(k=1, epsilon=1.0)
        with pytest.raises(ValueError):
            family.randomize_matrix(np.ones((2, 3), dtype=np.int8), rng)

    def test_matrix_rejects_bad_values(self, rng):
        family = SimpleRandomizerFamily(k=1, epsilon=1.0)
        with pytest.raises(ValueError):
            family.randomize_matrix(np.full((2, 3), -2), rng)

    def test_matrix_gap(self):
        family = SimpleRandomizerFamily(k=2, epsilon=1.0)
        rows = 40_000
        values = np.zeros((rows, 3), dtype=np.int8)
        values[:, 1] = -1
        output = family.randomize_matrix(values, np.random.default_rng(5))
        gap = float((output[:, 1] == -1).mean() - (output[:, 1] == 1).mean())
        assert abs(gap - family.c_gap) < 4 * (2.0 / math.sqrt(rows))

    def test_matrix_zeros_uniform(self):
        family = SimpleRandomizerFamily(k=2, epsilon=1.0)
        rows = 40_000
        values = np.zeros((rows, 2), dtype=np.int8)
        output = family.randomize_matrix(values, np.random.default_rng(6))
        rate = float((output == 1).mean())
        assert abs(rate - 0.5) < 4 * (0.5 / math.sqrt(2 * rows))

    def test_default_loop_matrix_matches_family_for_small_input(self, rng):
        """The base-class fallback path must also produce sign matrices."""
        from repro.core.interfaces import RandomizerFamily

        family = SimpleRandomizerFamily(k=1, epsilon=1.0)
        values = np.zeros((4, 3), dtype=np.int8)
        values[:, 0] = 1
        fallback = RandomizerFamily.randomize_matrix(family, values, rng)
        assert fallback.shape == (4, 3)
        assert set(np.unique(fallback).tolist()) <= {-1, 1}

"""Tests for the exact annulus law — every inequality of Section 5.5 / App. A.1."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annulus import (
    AnnulusLaw,
    future_rand_bounds,
    future_rand_eps_tilde,
)
from repro.utils.numerics import LOG_ZERO, log_binom, logsumexp

K_GRID = [1, 2, 3, 4, 8, 16, 37, 64, 100, 256, 1000]
EPS_GRID = [0.05, 0.25, 0.5, 1.0]


def law_grid():
    for k in K_GRID:
        for epsilon in EPS_GRID:
            yield k, epsilon, AnnulusLaw.for_future_rand(k, epsilon)


class TestParameterization:
    def test_eps_tilde_formula(self):
        assert future_rand_eps_tilde(4, 1.0) == pytest.approx(0.1)

    def test_eps_tilde_rejects_bad_args(self):
        with pytest.raises(ValueError):
            future_rand_eps_tilde(0, 1.0)
        with pytest.raises(ValueError):
            future_rand_eps_tilde(4, 0.0)

    def test_bounds_lb_formula(self):
        k, eps_tilde = 16, 0.05
        lower, _ = future_rand_bounds(k, eps_tilde)
        p = 1.0 / (math.exp(eps_tilde) + 1.0)
        assert lower == pytest.approx(k * p - 2 * math.sqrt(k))

    def test_g_at_ub_is_2_to_minus_k(self):
        """The defining property of UB (Eq. 15 / proof of Lemma 5.2)."""
        for k, _epsilon, law in law_grid():
            _, upper = law.real_bounds
            assert float(law.log_g(upper)) == pytest.approx(
                -k * math.log(2.0), rel=1e-9
            )

    def test_ub_between_kp_and_half_k(self):
        """Eq. 21: kp <= UB <= k/2."""
        for k, _epsilon, law in law_grid():
            _, upper = law.real_bounds
            kp = k * law.flip_probability
            assert kp - 1e-9 <= upper <= k / 2.0 + 1e-9


class TestIntegerAnnulus:
    def test_annulus_non_empty(self):
        for k, _epsilon, law in law_grid():
            assert 0 <= law.lo <= law.hi <= k

    def test_complement_non_empty_for_future_rand(self):
        for _k, _epsilon, law in law_grid():
            assert not law.complement_empty

    def test_annulus_within_real_bounds(self):
        for _k, _epsilon, law in law_grid():
            lower, upper = law.real_bounds
            assert law.lo >= lower - 1e-6
            assert law.hi <= upper + 1e-6

    def test_empty_integer_annulus_rejected(self):
        with pytest.raises(ValueError):
            AnnulusLaw(10, 0.1, lower=3.4, upper=3.6)

    def test_full_cover_flagged(self):
        law = AnnulusLaw(4, 0.1, lower=-1.0, upper=10.0)
        assert law.complement_empty
        assert law.log_p_out == LOG_ZERO

    def test_rejects_bad_eps_tilde(self):
        with pytest.raises(ValueError):
            AnnulusLaw(4, -0.1, lower=0.0, upper=2.0)


class TestLawNormalization:
    def test_distance_pmf_sums_to_one(self):
        for k, _epsilon, law in law_grid():
            if k > 300:
                continue
            assert law.distance_pmf().sum() == pytest.approx(1.0, abs=1e-9)

    def test_total_sequence_mass_is_one(self):
        """Sum over all 2^k sequences of the exact law equals 1."""
        for k in (1, 2, 4, 8, 12):
            law = AnnulusLaw.for_future_rand(k, 1.0)
            total = logsumexp(
                log_binom(k, i) + law.log_prob_at_distance(i) for i in range(k + 1)
            )
            assert total == pytest.approx(0.0, abs=1e-9)

    def test_mass_inside_plus_outside_is_one(self):
        for _k, _epsilon, law in law_grid():
            total = math.exp(law.log_mass_inside) + math.exp(law.log_mass_outside)
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_counts_add_to_2_to_k(self):
        for k in (1, 2, 5, 10, 30):
            law = AnnulusLaw.for_future_rand(k, 1.0)
            total = math.exp(law.log_count_inside) + math.exp(law.log_count_outside)
            assert total == pytest.approx(2.0**k, rel=1e-9)

    def test_g_is_decreasing(self):
        law = AnnulusLaw.for_future_rand(20, 1.0)
        values = [float(law.log_g(i)) for i in range(21)]
        assert all(a > b for a, b in zip(values, values[1:], strict=False))

    def test_prob_at_distance_rejects_out_of_range(self):
        law = AnnulusLaw.for_future_rand(4, 1.0)
        with pytest.raises(ValueError):
            law.log_prob_at_distance(5)
        with pytest.raises(ValueError):
            law.log_prob_at_distance(-1)


class TestLemma52Inequalities:
    def test_privacy_ratio_at_most_epsilon(self):
        """Lemma 5.2: p'_max / p'_min <= e^eps (the theorem's guarantee)."""
        for _k, epsilon, law in law_grid():
            assert law.privacy_log_ratio() <= epsilon + 1e-9

    def test_p_out_at_most_2_to_minus_k(self):
        """Inequality (20), upper half: P*_out <= 2^-k."""
        for k, _epsilon, law in law_grid():
            assert law.log_p_out <= -k * math.log(2.0) + 1e-9

    def test_p_out_lower_bound(self):
        """Inequality (20), lower half: P*_out >= e^(-3 eps~ sqrt(k)) p_avg."""
        for k, _epsilon, law in law_grid():
            bound = -3.0 * law.eps_tilde * math.sqrt(k) + law.log_p_avg
            assert law.log_p_out >= bound - 1e-9

    def test_inside_probabilities_bracketed(self):
        """Inequality (19): 2^-k <= Pr[R~(b)=s] <= e^(2 eps~ sqrt(k)) p_avg inside."""
        for k, _epsilon, law in law_grid():
            upper = 2.0 * law.eps_tilde * math.sqrt(k) + law.log_p_avg
            for i in (law.lo, (law.lo + law.hi) // 2, law.hi):
                value = law.log_prob_at_distance(i)
                assert value >= -k * math.log(2.0) - 1e-9
                assert value <= upper + 1e-9

    def test_p_avg_at_least_2_to_minus_k(self):
        """Equation (37): p_avg = g(kp) >= 2^-k >= g(k/2)."""
        for k, _epsilon, law in law_grid():
            assert law.log_p_avg >= -k * math.log(2.0) - 1e-9
            assert float(law.log_g(k / 2.0)) <= -k * math.log(2.0) + 1e-9


class TestCGap:
    def test_positive_across_grid(self):
        for _k, _epsilon, law in law_grid():
            assert law.c_gap > 0.0

    def test_lemma_53_lower_bound_constant(self):
        """c_gap * sqrt(k) / eps is bounded below by a universal constant."""
        constants = [
            law.c_gap * math.sqrt(k) / epsilon for k, epsilon, law in law_grid()
        ]
        assert min(constants) > 0.05

    def test_cross_check_with_coordinate_probabilities(self):
        """Two independent derivations of c_gap must agree exactly."""
        for k in (1, 2, 4, 16, 64, 256):
            law = AnnulusLaw.for_future_rand(k, 1.0)
            keep, flip = law.coordinate_preservation_probabilities()
            assert keep + flip == pytest.approx(1.0, abs=1e-9)
            assert keep - flip == pytest.approx(law.c_gap, abs=1e-9)

    def test_k_equals_one_matches_basic_randomizer(self):
        """At k=1 the annulus is {0}, so c_gap = tanh(eps~/2)."""
        law = AnnulusLaw.for_future_rand(1, 1.0)
        assert law.c_gap == pytest.approx(math.tanh(0.2 / 2.0), rel=1e-9)

    def test_monotone_decreasing_in_k(self):
        gaps = [AnnulusLaw.for_future_rand(k, 1.0).c_gap for k in (4, 16, 64, 256)]
        assert all(a > b for a, b in zip(gaps, gaps[1:], strict=False))

    def test_increasing_in_epsilon(self):
        gaps = [AnnulusLaw.for_future_rand(16, eps).c_gap for eps in (0.1, 0.5, 1.0)]
        assert all(a < b for a, b in zip(gaps, gaps[1:], strict=False))

    @given(
        st.integers(min_value=1, max_value=200),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_cgap_property(self, k, epsilon):
        law = AnnulusLaw.for_future_rand(k, epsilon)
        assert 0.0 < law.c_gap < 1.0
        assert law.privacy_log_ratio() <= epsilon + 1e-9


class TestOutsideDistribution:
    def test_sums_to_one(self):
        law = AnnulusLaw.for_future_rand(16, 1.0)
        _, probabilities = law.outside_distance_distribution
        assert probabilities.sum() == pytest.approx(1.0, abs=1e-12)

    def test_distances_outside_annulus(self):
        law = AnnulusLaw.for_future_rand(16, 1.0)
        distances, _ = law.outside_distance_distribution
        assert all(i < law.lo or i > law.hi for i in distances)

    def test_sampling_matches_weights(self, rng):
        law = AnnulusLaw.for_future_rand(8, 1.0)
        distances, probabilities = law.outside_distance_distribution
        samples = law.sample_outside_distances(20_000, rng)
        for distance, probability in zip(distances, probabilities, strict=True):
            if probability < 1e-4:
                continue
            empirical = float((samples == distance).mean())
            tolerance = 5 * math.sqrt(probability * (1 - probability) / 20_000)
            assert abs(empirical - probability) < tolerance

    def test_full_cover_raises(self):
        law = AnnulusLaw(4, 0.1, lower=-1.0, upper=10.0)
        with pytest.raises(RuntimeError):
            law.sample_outside_distances(1, np.random.default_rng(0))

"""Tests for the R~ sampler, including exact-law goodness of fit."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import stats

from repro.core.annulus import AnnulusLaw
from repro.core.composed_randomizer import ComposedRandomizer


@pytest.fixture
def law() -> AnnulusLaw:
    return AnnulusLaw.for_future_rand(k=8, epsilon=1.0)


@pytest.fixture
def randomizer(law: AnnulusLaw) -> ComposedRandomizer:
    return ComposedRandomizer(law)


class TestInterface:
    def test_sample_shape_and_domain(self, randomizer, rng):
        output = randomizer.sample(np.ones(8, dtype=np.int8), rng)
        assert output.shape == (8,)
        assert set(np.unique(output).tolist()) <= {-1, 1}

    def test_rejects_wrong_length(self, randomizer, rng):
        with pytest.raises(ValueError):
            randomizer.sample(np.ones(5, dtype=np.int8), rng)

    def test_rejects_non_sign_input(self, randomizer, rng):
        with pytest.raises(ValueError):
            randomizer.sample(np.array([1, 0, 1, 1, 1, 1, 1, 1]), rng)

    def test_batch_shape(self, randomizer, rng):
        output = randomizer.sample_batch(np.ones(8, dtype=np.int8), 13, rng)
        assert output.shape == (13, 8)

    def test_batch_zero_count(self, randomizer, rng):
        output = randomizer.sample_batch(np.ones(8, dtype=np.int8), 0, rng)
        assert output.shape == (0, 8)

    def test_batch_negative_count_rejected(self, randomizer, rng):
        with pytest.raises(ValueError):
            randomizer.sample_batch(np.ones(8, dtype=np.int8), -1, rng)

    def test_c_gap_delegates_to_law(self, randomizer, law):
        assert randomizer.c_gap == law.c_gap

    def test_log_prob_of_output(self, randomizer, law):
        b = np.ones(8, dtype=np.int8)
        s = b.copy()
        s[:3] = -1
        assert randomizer.log_prob_of_output(b, s) == law.log_prob_at_distance(3)


def _distance_chi2(outputs: np.ndarray, b: np.ndarray, law: AnnulusLaw) -> float:
    """Chi-squared p-value of sampled Hamming distances vs the exact pmf."""
    distances = (outputs != b[np.newaxis, :]).sum(axis=1)
    expected_pmf = law.distance_pmf()
    counts = np.bincount(distances, minlength=law.k + 1).astype(np.float64)
    total = counts.sum()
    # Merge bins with tiny expectation to keep the chi-squared valid.
    keep = expected_pmf * total >= 5.0
    merged_observed = np.concatenate(
        [counts[keep], [counts[~keep].sum()]]
    )
    merged_expected = np.concatenate(
        [expected_pmf[keep] * total, [expected_pmf[~keep].sum() * total]]
    )
    if merged_expected[-1] == 0:
        merged_observed = merged_observed[:-1]
        merged_expected = merged_expected[:-1]
    merged_expected *= merged_observed.sum() / merged_expected.sum()
    return stats.chisquare(merged_observed, merged_expected).pvalue


class TestExactLawAgreement:
    """The samplers must realize the closed-form law exactly."""

    TRIALS = 40_000

    def test_scalar_sampler_distance_distribution(self, law):
        randomizer = ComposedRandomizer(law)
        rng = np.random.default_rng(2024)
        b = np.ones(law.k, dtype=np.int8)
        outputs = np.array([randomizer.sample(b, rng) for _ in range(5000)])
        assert _distance_chi2(outputs, b, law) > 1e-4

    def test_batch_sampler_distance_distribution(self, law):
        randomizer = ComposedRandomizer(law)
        rng = np.random.default_rng(99)
        b = np.ones(law.k, dtype=np.int8)
        outputs = randomizer.sample_batch(b, self.TRIALS, rng)
        assert _distance_chi2(outputs, b, law) > 1e-4

    def test_batch_sampler_nontrivial_input(self, law):
        randomizer = ComposedRandomizer(law)
        rng = np.random.default_rng(7)
        b = np.array([1, -1, 1, 1, -1, -1, 1, -1], dtype=np.int8)
        outputs = randomizer.sample_batch(b, self.TRIALS, rng)
        assert _distance_chi2(outputs, b, law) > 1e-4

    def test_uniformity_within_distance_class(self, law):
        """Conditioned on the distance, the flipped subset must be uniform:
        every coordinate should be flipped equally often."""
        randomizer = ComposedRandomizer(law)
        rng = np.random.default_rng(13)
        b = np.ones(law.k, dtype=np.int8)
        outputs = randomizer.sample_batch(b, self.TRIALS, rng)
        flip_rates = (outputs == -1).mean(axis=0)
        # All coordinates are exchangeable, so their flip rates agree.
        assert flip_rates.max() - flip_rates.min() < 0.02

    def test_coordinate_gap_matches_c_gap(self, law):
        """Property II at the sampler level: empirical keep-flip gap = c_gap."""
        randomizer = ComposedRandomizer(law)
        rng = np.random.default_rng(4)
        b = np.ones(law.k, dtype=np.int8)
        outputs = randomizer.sample_batch(b, self.TRIALS, rng)
        gap = float((outputs[:, 0] == 1).mean() - (outputs[:, 0] == -1).mean())
        standard_error = 2.0 / math.sqrt(self.TRIALS)
        assert abs(gap - law.c_gap) < 4 * standard_error

    def test_symmetry_under_input_negation(self, law):
        """R~(-b) has the law of -R~(b): distances to the input agree."""
        randomizer = ComposedRandomizer(law)
        b = np.ones(law.k, dtype=np.int8)
        outputs_pos = randomizer.sample_batch(b, 20_000, np.random.default_rng(5))
        outputs_neg = randomizer.sample_batch(-b, 20_000, np.random.default_rng(5))
        distances_pos = (outputs_pos != b).sum(axis=1)
        distances_neg = (outputs_neg != -b).sum(axis=1)
        assert np.array_equal(distances_pos, distances_neg)


class TestDeterminism:
    def test_same_seed_same_output(self, law):
        randomizer = ComposedRandomizer(law)
        b = np.ones(law.k, dtype=np.int8)
        a = randomizer.sample(b, np.random.default_rng(3))
        c = randomizer.sample(b, np.random.default_rng(3))
        assert np.array_equal(a, c)

    def test_batch_matches_repeated_scalar_distributionally(self, law):
        """Batch and scalar samplers share the distance law (smoke check)."""
        randomizer = ComposedRandomizer(law)
        b = np.ones(law.k, dtype=np.int8)
        scalar_rng = np.random.default_rng(11)
        scalar = np.array([randomizer.sample(b, scalar_rng) for _ in range(4000)])
        batch = randomizer.sample_batch(b, 4000, np.random.default_rng(12))
        mean_scalar = (scalar != b).sum(axis=1).mean()
        mean_batch = (batch != b).sum(axis=1).mean()
        assert abs(mean_scalar - mean_batch) < 0.15

"""Tests for the end-to-end protocol drivers (object/online and vectorized)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import hoeffding_radius
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolResult, run_online
from repro.core.simple_randomizer import SimpleRandomizerFamily
from repro.core.vectorized import group_partial_sums, run_batch
from repro.dyadic.partial_sums import partial_sums_of_order


class TestProtocolResult:
    def test_error_properties(self):
        result = ProtocolResult(
            estimates=np.array([1.0, 3.0]),
            true_counts=np.array([0.0, 1.0]),
            c_gap=0.5,
            family_name="x",
        )
        assert result.errors.tolist() == [1.0, 2.0]
        assert result.max_abs_error == 2.0
        assert result.mean_abs_error == 1.5


class TestInputValidation:
    def test_shape_mismatch(self, small_params, small_states, rng):
        with pytest.raises(ValueError):
            run_online(small_states[:, :8], small_params, rng)
        with pytest.raises(ValueError):
            run_batch(small_states[:10], small_params, rng)

    def test_non_boolean_states(self, small_params, rng):
        states = np.full((small_params.n, small_params.d), 2, dtype=np.int8)
        with pytest.raises(ValueError):
            run_batch(states, small_params, rng)

    def test_change_budget_enforced(self, small_params, rng):
        states = np.zeros((small_params.n, small_params.d), dtype=np.int8)
        states[0, ::2] = 1  # alternating: d/2 changes >> k
        with pytest.raises(ValueError):
            run_batch(states, small_params, rng)
        with pytest.raises(ValueError):
            run_online(states, small_params, rng)

    def test_rejects_1d(self, small_params, rng):
        with pytest.raises(ValueError):
            run_batch(np.zeros(16, dtype=np.int8), small_params, rng)


class TestGroupPartialSums:
    def test_matches_per_user_api(self, rng):
        states = rng.integers(0, 2, size=(15, 16)).astype(np.int8)
        for order in range(5):
            expected = np.array(
                [partial_sums_of_order(row, order) for row in states]
            )
            assert np.array_equal(group_partial_sums(states, order), expected)


class TestStatisticalCorrectness:
    def test_batch_estimates_unbiased(self, small_params, small_states):
        trials = 40
        errors_at_end = []
        for trial in range(trials):
            result = run_batch(
                small_states, small_params, np.random.default_rng(5000 + trial)
            )
            errors_at_end.append(result.errors[-1])
        mean = float(np.mean(errors_at_end))
        standard_error = float(np.std(errors_at_end, ddof=1) / np.sqrt(trials))
        assert abs(mean) < 4 * standard_error + 1e-9

    def test_online_estimates_unbiased(self, small_states):
        params = ProtocolParams(n=100, d=16, k=3, epsilon=1.0)
        states = small_states[:100]
        trials = 25
        errors_at_end = []
        for trial in range(trials):
            result = run_online(states, params, np.random.default_rng(6000 + trial))
            errors_at_end.append(result.errors[-1])
        mean = float(np.mean(errors_at_end))
        standard_error = float(np.std(errors_at_end, ddof=1) / np.sqrt(trials))
        assert abs(mean) < 4 * standard_error + 1e-9

    def test_online_and_batch_same_error_scale(self, small_params, small_states):
        """The two drivers realize the same protocol: their error standard
        deviations must agree within Monte-Carlo tolerance."""
        trials = 15
        online_errors = [
            run_online(
                small_states, small_params, np.random.default_rng(100 + t)
            ).errors[-1]
            for t in range(trials)
        ]
        batch_errors = [
            run_batch(
                small_states, small_params, np.random.default_rng(200 + t)
            ).errors[-1]
            for t in range(trials)
        ]
        std_online = np.std(online_errors, ddof=1)
        std_batch = np.std(batch_errors, ddof=1)
        assert 0.3 < std_online / std_batch < 3.0

    def test_max_error_within_hoeffding_radius(self, small_params, small_states, rng):
        """Lemma 4.6 with beta' = beta/d: a single run should essentially
        always stay within the explicit radius (the bound is loose)."""
        result = run_batch(small_states, small_params, rng)
        radius = hoeffding_radius(
            small_params, result.c_gap, small_params.beta / small_params.d
        )
        assert result.max_abs_error <= radius

    def test_custom_family(self, small_params, small_states, rng):
        family = SimpleRandomizerFamily(small_params.k, small_params.epsilon)
        result = run_batch(small_states, small_params, rng, family=family)
        assert result.family_name == "simple_rr"
        assert result.c_gap == family.c_gap

    def test_orders_recorded(self, small_params, small_states, rng):
        result = run_batch(small_states, small_params, rng)
        assert result.orders.shape == (small_params.n,)
        assert result.orders.min() >= 0
        assert result.orders.max() <= small_params.log_d

    def test_deterministic_given_seed(self, small_params, small_states):
        a = run_batch(small_states, small_params, np.random.default_rng(1))
        b = run_batch(small_states, small_params, np.random.default_rng(1))
        assert np.array_equal(a.estimates, b.estimates)

"""The bench engine and the ``repro bench`` / ``--kernel`` CLI surface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BENCH_SEED_SCHEME,
    HEADLINE_POINT,
    bench_grid as _bench_grid,  # aliased: pytest.ini collects bench_* names
    bench_rng as _bench_rng,
    chaos_bench_grid as _chaos_bench_grid,
    format_bench_table,
    format_protocol_bench_table,
    format_service_bench_table,
    headline_speedup,
    protocol_bench_grid as _protocol_bench_grid,
    run_chaos_bench,
    run_kernel_bench,
    run_protocol_bench,
    run_service_bench,
    service_bench_grid as _service_bench_grid,
    sparse_sign_matrix,
    write_bench_report,
)
from repro.cli import build_parser, main


class TestBenchEngine:
    def test_grid_scales(self):
        assert _bench_grid("smoke")
        quick = _bench_grid("quick")
        assert [
            {key: point[key] for key in HEADLINE_POINT} for point in quick
        ] == [HEADLINE_POINT]
        full = _bench_grid("full")
        assert len(full) > len(quick)
        assert any(
            all(point[key] == HEADLINE_POINT[key] for key in HEADLINE_POINT)
            for point in full
        ), "the full grid must include the headline point"
        with pytest.raises(ValueError, match="scale"):
            _bench_grid("huge")

    def test_sparse_sign_matrix_shape_and_sparsity(self):
        matrix = sparse_sign_matrix(50, 32, 4, np.random.default_rng(0))
        assert matrix.shape == (50, 32)
        assert matrix.dtype == np.int8
        assert set(np.unique(matrix)) <= {-1, 0, 1}
        assert (np.count_nonzero(matrix, axis=1) <= 4).all()
        assert np.count_nonzero(matrix) > 0

    def test_smoke_payload_structure(self):
        payload = run_kernel_bench(scale="smoke", seed=3)
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["benchmark"] == "randomize_matrix"
        kernels = {row["kernel"] for row in payload["results"]}
        assert kernels == {"reference", "fast"}
        for row in payload["results"]:
            assert row["seconds"] > 0
            assert row["ns_per_report"] > 0
        assert len(payload["speedups"]) == 1
        assert payload["speedups"][0]["speedup"] > 0
        # smoke doesn't measure the headline point, so no headline speedup
        assert payload["headline_speedup"] is None
        assert headline_speedup(payload) is None
        assert "git_sha" in payload and payload["git_sha"]

    def test_write_report_round_trips(self, tmp_path):
        payload = run_kernel_bench(scale="smoke", seed=1)
        path = write_bench_report(payload, tmp_path / "sub" / "BENCH_kernels.json")
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(payload))

    def test_format_table_mentions_kernels(self):
        payload = run_kernel_bench(scale="smoke", seed=2)
        text = format_bench_table(payload)
        assert "reference" in text and "fast" in text and "speedup" in text


class TestBenchSeedTree:
    """The v2 seed scheme: keyed SeedSequence leaves, no offset arithmetic."""

    def test_leaves_are_pinned(self):
        # Regression pins for the schema-2 seed derivation: if these move,
        # every archived BENCH_*.json seed becomes unreproducible — bump
        # BENCH_SCHEMA_VERSION and say so in the provenance block.
        assert list(_bench_rng(0, 0, 0).integers(0, 2**31, 4)) == [
            36989502, 1213611225, 1953115865, 2008827365,
        ]
        assert list(_bench_rng(0, 0, 1).integers(0, 2**31, 4)) == [
            1281360082, 783408694, 811107819, 2019249523,
        ]
        assert list(_bench_rng(7, 1, 2).integers(0, 2**31, 4)) == [
            1283693412, 1028419496, 716457693, 303220593,
        ]

    def test_leaves_are_reconstructible_and_distinct(self):
        a = _bench_rng(5, 2, 3).integers(0, 2**63, 8)
        b = _bench_rng(5, 2, 3).integers(0, 2**63, 8)
        assert (a == b).all(), "the same leaf must always yield the same stream"
        for other in [(5, 2, 4), (5, 3, 3), (6, 2, 3)]:
            c = _bench_rng(*other).integers(0, 2**63, 8)
            assert not (a == c).all(), f"leaf {other} must differ from (5, 2, 3)"

    def test_payloads_record_the_scheme(self):
        assert BENCH_SCHEMA_VERSION == 2
        kernel_payload = run_kernel_bench(scale="smoke", seed=0)
        assert kernel_payload["seed_scheme"] == BENCH_SEED_SCHEME
        protocol_payload = run_protocol_bench(scale="smoke", seed=0)
        assert protocol_payload["seed_scheme"] == BENCH_SEED_SCHEME

    def test_protocol_bench_is_deterministic(self):
        def errors(payload):
            return [
                (row["protocol"], row["max_abs_error"], row["mean_abs_error"])
                for row in payload["results"]
            ]

        first = run_protocol_bench(scale="smoke", seed=11)
        second = run_protocol_bench(scale="smoke", seed=11)
        assert errors(first) == errors(second)


class TestProtocolBench:
    def test_grid_scales(self):
        assert _protocol_bench_grid("smoke")
        assert len(_protocol_bench_grid("full")) > len(_protocol_bench_grid("quick"))
        with pytest.raises(ValueError, match="scale"):
            _protocol_bench_grid("huge")

    def test_smoke_payload_covers_every_registry_entry(self):
        from repro.protocols import PROTOCOLS

        payload = run_protocol_bench(scale="smoke", seed=0)
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["benchmark"] == "protocols"
        assert payload["protocols"] == sorted(PROTOCOLS)
        covered = {row["protocol"] for row in payload["results"]}
        assert covered == set(PROTOCOLS)
        for row in payload["results"]:
            assert row["seconds"] > 0
            assert row["max_abs_error"] >= row["mean_abs_error"] >= 0
            assert row["expected_report_bits"] > 0
            assert row["c_gap"] > 0
        assert "git_sha" in payload and payload["git_sha"]

    def test_rows_at_a_point_share_the_workload_grid(self):
        payload = run_protocol_bench(scale="smoke", seed=1)
        points = {
            (row["n"], row["d"], row["k"], row["epsilon"])
            for row in payload["results"]
        }
        assert len(points) == len(_protocol_bench_grid("smoke"))

    def test_format_table_lists_protocols(self):
        payload = run_protocol_bench(scale="smoke", seed=2)
        text = format_protocol_bench_table(payload)
        assert "heavy_hitters" in text and "future_rand" in text
        assert "bits/user" in text

    def test_write_report_round_trips(self, tmp_path):
        payload = run_protocol_bench(scale="smoke", seed=3)
        path = write_bench_report(payload, tmp_path / "BENCH_protocols.json")
        assert json.loads(path.read_text()) == json.loads(json.dumps(payload))

    def test_cli_mode_protocols_emits_json(self, capsys, tmp_path):
        out = tmp_path / "BENCH_protocols.json"
        assert main(
            ["bench", "--mode", "protocols", "--scale", "smoke", "--out", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "protocols"
        assert "protocol" in capsys.readouterr().out

    def test_cli_mode_protocols_retargets_default_out(self, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--mode", "protocols", "--scale", "smoke"]) == 0
        assert (tmp_path / "BENCH_protocols.json").exists()
        assert not (tmp_path / "BENCH_kernels.json").exists()


class TestServiceBench:
    def test_grid_scales(self):
        assert _service_bench_grid("smoke")
        full = _service_bench_grid("full")
        assert full[0]["n"] == 100_000 and full[0]["workers"] == [1, 2, 4]
        with pytest.raises(ValueError, match="scale"):
            _service_bench_grid("huge")

    def test_smoke_payload_pins_the_sharding_contract(self):
        payload = run_service_bench(scale="smoke", seed=0)
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["benchmark"] == "service"
        assert payload["seed_scheme"] == BENCH_SEED_SCHEME
        assert payload["all_bit_identical"] is True
        assert payload["all_within_radius"] is True
        assert payload["headline_reports_per_second"] > 0
        expected_rows = sum(
            len(point["workers"]) * len(point.get("faults", [None]))
            for point in _service_bench_grid("smoke")
        )
        assert len(payload["results"]) == expected_rows
        for row in payload["results"]:
            assert row["traffic"] == "soak"
            assert row["seconds"] > 0
            assert row["delivered_reports"] > 0
            assert row["max_abs_error"] <= row["fault_adjusted_radius"]
            assert row["bit_identical"] is True

    def test_same_seed_reproduces_every_deterministic_field(self):
        first = run_service_bench(scale="smoke", seed=4)
        second = run_service_bench(scale="smoke", seed=4)
        deterministic = (
            "workers", "delivered_reports", "dropped_reports",
            "duplicates_discarded", "skew_buffered", "effective_drop_rate",
            "effective_duplicate_rate", "max_abs_error", "blocks",
        )
        for row_a, row_b in zip(first["results"], second["results"]):
            for field in deterministic:
                assert row_a[field] == row_b[field], field

    def test_format_table_reports_throughput_and_contract(self):
        payload = run_service_bench(scale="smoke", seed=2)
        text = format_service_bench_table(payload)
        assert "reports/s" in text
        assert "bit-identical at every worker count" in text
        assert "headline sustained ingest" in text

    def test_cli_mode_service_emits_json(self, capsys, tmp_path):
        out = tmp_path / "BENCH_service.json"
        assert main(
            ["bench", "--mode", "service", "--scale", "smoke", "--out", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "service"
        assert "sharding contract" in capsys.readouterr().out

    def test_cli_mode_service_retargets_default_out(self, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--mode", "service", "--scale", "smoke"]) == 0
        assert (tmp_path / "BENCH_service.json").exists()
        assert not (tmp_path / "BENCH_kernels.json").exists()


class TestChaosBench:
    def test_grid_scales(self):
        smoke = _chaos_bench_grid("smoke")
        assert smoke[0]["faults"] == [None, "crash", "hang", "corrupt", "chaos"]
        assert "block_rows" in smoke[0]
        with pytest.raises(ValueError, match="scale"):
            _chaos_bench_grid("huge")

    def test_smoke_payload_recovers_injected_faults(self):
        payload = run_chaos_bench(scale="smoke", seed=0)
        assert payload["benchmark"] == "chaos"
        assert payload["all_bit_identical"] is True
        assert payload["all_within_radius"] is True
        rows = payload["results"]
        faulted = [row for row in rows if row["faults"] != "none"]
        assert faulted, "the chaos grid must exercise fault models"
        assert sum(row["faults_recovered"] for row in faulted) > 0
        assert sum(row["retries"] for row in faulted) > 0
        for row in rows:
            assert row["bit_identical"] is True
            assert row["degraded"] is False

    def test_cli_chaos_emits_json_and_gates_the_contract(self, capsys, tmp_path):
        out = tmp_path / "BENCH_service.json"
        assert main(["chaos", "--scale", "smoke", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "chaos"
        text = capsys.readouterr().out
        assert "chaos recovery trajectory" in text
        assert "recovery contract" in text

    def test_cli_chaos_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.scale == "quick"
        assert args.out == "BENCH_service.json"
        assert args.seed == 0


class TestBenchCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.scale == "quick"
        assert args.out == "BENCH_kernels.json"
        assert args.assert_speedup == "auto"

    def test_bench_smoke_emits_json(self, capsys, tmp_path):
        out = tmp_path / "BENCH_kernels.json"
        assert main(["bench", "--scale", "smoke", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["scale"] == "smoke"
        assert "randomize_matrix" in capsys.readouterr().out

    def test_bench_assert_on_without_headline_fails(self, capsys, tmp_path):
        out = tmp_path / "BENCH_kernels.json"
        code = main(
            [
                "bench", "--scale", "smoke", "--out", str(out),
                "--assert-speedup", "on",
            ]
        )
        assert code == 1
        assert out.exists(), "JSON must be emitted even when the assert fails"
        assert "headline" in capsys.readouterr().err

    def test_bench_assert_off_always_passes(self, tmp_path):
        out = tmp_path / "BENCH_kernels.json"
        assert main(
            [
                "bench", "--scale", "smoke", "--out", str(out),
                "--assert-speedup", "off",
            ]
        ) == 0


class TestKernelCli:
    def test_simulate_fast_kernel(self, capsys):
        assert main(
            [
                "simulate", "--protocol", "future_rand", "--n", "400",
                "--d", "16", "--k", "2", "--kernel", "fast",
            ]
        ) == 0
        assert "future_rand" in capsys.readouterr().out

    def test_simulate_fast_kernel_chunked(self, capsys):
        assert main(
            [
                "simulate", "--protocol", "future_rand", "--n", "400",
                "--d", "16", "--k", "2", "--kernel", "fast",
                "--chunk-size", "128",
            ]
        ) == 0

    def test_simulate_kernel_unaware_protocol_exits_2(self, capsys):
        code = main(
            [
                "simulate", "--protocol", "erlingsson", "--n", "200",
                "--d", "16", "--k", "2", "--kernel", "fast",
            ]
        )
        assert code == 2
        error = capsys.readouterr().err
        assert "does not support --kernel" in error
        assert "future_rand" in error  # lists the kernel-aware protocols

    def test_unknown_kernel_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--kernel", "turbo"]
            )

    def test_sweep_fast_kernel(self, capsys):
        assert main(
            [
                "sweep", "--protocols", "future_rand", "--parameter", "k",
                "--values", "2", "--n", "300", "--d", "16", "--trials", "1",
                "--kernel", "fast",
            ]
        ) == 0
        assert "future_rand" in capsys.readouterr().out

    def test_sweep_kernel_unaware_protocol_exits_2(self, capsys):
        code = main(
            [
                "sweep", "--protocols", "memoization", "--parameter", "k",
                "--values", "2", "--n", "300", "--d", "16", "--trials", "1",
                "--kernel", "fast",
            ]
        )
        assert code == 2
        assert "do(es) not support --kernel" in capsys.readouterr().err

    def test_run_protocol_fast_kernel_streaming(self, capsys):
        assert main(
            [
                "run-protocol", "future_rand", "--n", "300", "--d", "16",
                "--k", "2", "--kernel", "fast", "--streaming",
            ]
        ) == 0
        assert "streaming" in capsys.readouterr().out

    def test_run_protocol_kernel_unaware_exits_2(self, capsys):
        code = main(
            [
                "run-protocol", "central_tree", "--n", "300", "--d", "16",
                "--k", "2", "--kernel", "fast",
            ]
        )
        assert code == 2

"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.scale == "small"
        assert args.seed == 0

    def test_cgap_requires_k(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cgap"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E10" in output

    def test_run_e1(self, capsys):
        assert main(["run", "E1"]) == 0
        output = capsys.readouterr().out
        assert "I_{1,1}" in output

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "E42"])

    def test_run_with_json_output(self, capsys, tmp_path):
        target = tmp_path / "results"
        assert main(["run", "E1", "--json", str(target)]) == 0
        payload = json.loads((target / "E1.json").read_text())
        assert payload["columns"][0] == "interval"

    def test_cgap_command(self, capsys):
        assert main(["cgap", "--k", "16", "--epsilon", "0.5"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["k"] == 16
        assert payload["c_gap"] > 0
        assert payload["privacy_log_ratio"] <= 0.5 + 1e-9

    def test_verify_command(self, capsys):
        assert main(["verify", "--k", "8", "--epsilon", "1.0"]) == 0
        output = capsys.readouterr().out
        assert "lemma52" in output
        assert "FAILED" not in output

    def test_communication_command(self, capsys):
        assert main(["communication", "--d", "64"]) == 0
        output = capsys.readouterr().out
        assert "future_rand" in output
        assert "naive_rr_split" in output

    def test_simulate_command(self, capsys):
        assert main(
            ["simulate", "--n", "500", "--d", "16", "--k", "2", "--seed", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert "max |error|" in output

    def test_simulate_with_consistency(self, capsys):
        assert main(
            [
                "simulate", "--n", "500", "--d", "16", "--k", "2",
                "--consistency",
            ]
        ) == 0
        assert "+consistency" in capsys.readouterr().out

    def test_simulate_baseline(self, capsys):
        assert main(
            ["simulate", "--protocol", "naive_split", "--n", "300", "--d", "16",
             "--k", "2"]
        ) == 0
        assert "naive_rr_split" in capsys.readouterr().out

    def test_simulate_consistency_rejected_for_baselines(self):
        with pytest.raises(SystemExit):
            main(
                ["simulate", "--protocol", "naive_split", "--n", "100",
                 "--d", "16", "--k", "2", "--consistency"]
            )


_SWEEP_ARGS = [
    "sweep", "--protocols", "future_rand", "naive_unsplit",
    "--parameter", "k", "--values", "1", "2",
    "--n", "300", "--d", "16", "--trials", "2", "--seed", "0",
]


class TestSweepAndResults:
    def test_sweep_parser_defaults(self):
        args = build_parser().parse_args(
            ["sweep", "--parameter", "k", "--values", "2", "4"]
        )
        assert args.protocols == ["future_rand"]
        assert args.workers == 1
        assert args.resume is True
        assert args.store_dir is None

    def test_sweep_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--protocols", "nope", "--parameter", "k",
                 "--values", "2"]
            )

    def test_sweep_without_store(self, capsys):
        assert main(_SWEEP_ARGS) == 0
        output = capsys.readouterr().out
        assert "future_rand" in output and "naive_unsplit" in output
        assert "store:" not in output

    def test_sweep_persists_and_resumes(self, capsys, tmp_path):
        store_dir = str(tmp_path / "results")
        assert main([*_SWEEP_ARGS, "--workers", "2", "--out", store_dir]) == 0
        first = capsys.readouterr().out
        # 2 protocols x 2 sweep points x 2 trials, one-trial shards.
        assert "8 shard artifacts, 8 new this run" in first

        assert main([*_SWEEP_ARGS, "--out", store_dir, "--resume"]) == 0
        second = capsys.readouterr().out
        assert "8 shard artifacts, 0 new this run" in second

        def table_lines(text):
            return [line for line in text.splitlines() if line.startswith("|")]

        assert table_lines(first) == table_lines(second)

    def test_results_show_store_and_table(self, capsys, tmp_path):
        store_dir = tmp_path / "results"
        assert main([*_SWEEP_ARGS, "--out", str(store_dir)]) == 0
        capsys.readouterr()

        assert main(["results", "show", str(store_dir)]) == 0
        summary = capsys.readouterr().out
        assert "shard artifacts: 8" in summary
        assert "future_rand: 4 shards" in summary
        assert "tables: 1" in summary

        table_path = next((store_dir / "tables").glob("*.json"))
        assert main(["results", "show", str(table_path)]) == 0
        assert "mean_max_abs" in capsys.readouterr().out

    def test_results_merge(self, capsys, tmp_path):
        store_dir = tmp_path / "results"
        assert main([*_SWEEP_ARGS, "--out", str(store_dir)]) == 0
        capsys.readouterr()
        table_path = next((store_dir / "tables").glob("*.json"))
        out_path = tmp_path / "merged.json"
        assert main(
            ["results", "merge", str(out_path), str(table_path), str(table_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "merged 2 tables, 4 rows" in output
        assert out_path.exists()

    def test_run_experiment_with_store(self, capsys, tmp_path):
        store_dir = tmp_path / "e2-artifacts"
        assert main(
            ["run", "E2", "--scale", "small", "--workers", "2",
             "--out", str(store_dir)]
        ) == 0
        assert "fitted exponent" in capsys.readouterr().out
        assert any((store_dir / "shards").glob("*.json"))


class TestErrorPaths:
    """Every failure exits non-zero with a readable message, never a traceback."""

    def test_results_merge_missing_store(self, capsys, tmp_path):
        out_path = tmp_path / "merged.json"
        missing = tmp_path / "no-such-store"
        assert main(["results", "merge", str(out_path), str(missing)]) == 1
        error = capsys.readouterr().err
        assert "no such table file or result store" in error
        assert str(missing) in error
        assert not out_path.exists()

    def test_results_merge_empty_store(self, capsys, tmp_path):
        empty = tmp_path / "empty-store"
        empty.mkdir()
        assert main(["results", "merge", str(tmp_path / "m.json"), str(empty)]) == 1
        error = capsys.readouterr().err
        assert "contains no saved tables" in error

    def test_results_merge_expands_store_directories(self, capsys, tmp_path):
        store_dir = tmp_path / "results"
        assert main([*_SWEEP_ARGS, "--out", str(store_dir)]) == 0
        capsys.readouterr()
        out_path = tmp_path / "merged.json"
        assert main(["results", "merge", str(out_path), str(store_dir)]) == 0
        assert "4 rows" in capsys.readouterr().out
        assert out_path.exists()

    def test_results_merge_unreadable_table(self, capsys, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json at all")
        assert main(["results", "merge", str(tmp_path / "m.json"), str(garbage)]) == 1
        assert "cannot read table" in capsys.readouterr().err

    def test_results_show_missing_path(self, capsys, tmp_path):
        assert main(["results", "show", str(tmp_path / "nope.json")]) == 1
        assert "no such file or result store" in capsys.readouterr().err

    def test_run_protocol_unknown_name_exits_with_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run-protocol", "definitely-not-registered"])
        assert excinfo.value.code == 2
        error = capsys.readouterr().err
        assert "invalid choice" in error
        assert "future_rand" in error  # the message lists the registry

    def test_chunk_size_zero_is_rejected_with_readable_message(self, capsys):
        for command in (
            ["sweep", "--parameter", "k", "--values", "2", "--chunk-size", "0"],
            ["simulate", "--chunk-size", "0"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(command)
            assert excinfo.value.code == 2
            assert "must be a positive integer" in capsys.readouterr().err

    def test_sweep_chunk_size_with_non_chunkable_protocol(self, capsys):
        code = main(
            ["sweep", "--protocols", "erlingsson", "--parameter", "k",
             "--values", "2", "--n", "200", "--d", "8", "--trials", "1",
             "--chunk-size", "64"]
        )
        assert code == 2
        error = capsys.readouterr().err
        assert "not support --chunk-size" in error
        assert "future_rand" in error  # names the chunk-aware alternatives


class TestChunkSize:
    def test_simulate_chunked_future_rand(self, capsys):
        assert main(
            ["simulate", "--n", "1500", "--d", "16", "--k", "3",
             "--chunk-size", "256"]
        ) == 0
        assert "max |error|" in capsys.readouterr().out

    def test_simulate_chunked_with_consistency(self, capsys):
        assert main(
            ["simulate", "--n", "1000", "--d", "16", "--k", "2",
             "--chunk-size", "128", "--consistency"]
        ) == 0
        assert "max |error|" in capsys.readouterr().out

    def test_simulate_chunked_non_chunkable_protocol(self, capsys):
        assert main(
            ["simulate", "--protocol", "memoization", "--n", "500", "--d", "16",
             "--chunk-size", "64"]
        ) == 2
        assert "does not support --chunk-size" in capsys.readouterr().err

    def test_sweep_chunked(self, capsys):
        assert main(
            ["sweep", "--parameter", "k", "--values", "2", "4", "--n", "400",
             "--d", "16", "--trials", "1", "--chunk-size", "128"]
        ) == 0
        assert "future_rand" in capsys.readouterr().out


class TestItemDomainCli:
    def test_run_protocol_heavy_hitters_with_domain_size(self, capsys):
        assert main(
            ["run-protocol", "heavy_hitters", "--n", "2000", "--d", "4",
             "--k", "1", "--epsilon", "8.0", "--domain-size", "32"]
        ) == 0
        out = capsys.readouterr().out
        assert "item domain:  m=32" in out
        assert "top items" in out

    def test_run_protocol_categorical_with_domain_size(self, capsys):
        assert main(
            ["run-protocol", "categorical", "--n", "500", "--d", "8",
             "--k", "2", "--domain-size", "8"]
        ) == 0
        assert "item domain:  m=8" in capsys.readouterr().out

    def test_run_protocol_heavy_hitters_chunked(self, capsys):
        assert main(
            ["run-protocol", "heavy_hitters", "--n", "2000", "--d", "4",
             "--k", "1", "--epsilon", "8.0", "--domain-size", "32",
             "--chunk-size", "512"]
        ) == 0
        assert "item domain" in capsys.readouterr().out

    def test_domain_size_on_boolean_protocol_exits_2(self, capsys):
        code = main(
            ["run-protocol", "future_rand", "--n", "300", "--d", "16",
             "--k", "2", "--domain-size", "64"]
        )
        assert code == 2
        error = capsys.readouterr().err
        assert "--domain-size does not apply" in error
        # Lists the item-domain alternatives so the fix is one rename away.
        assert "heavy_hitters" in error and "categorical" in error

    def test_run_protocol_item_streaming(self, capsys):
        assert main(
            ["run-protocol", "hashed_frequency", "--n", "400", "--d", "8",
             "--k", "2", "--domain-size", "16", "--streaming"]
        ) == 0
        out = capsys.readouterr().out
        assert "streaming" in out and "item domain" in out


class TestServeSim:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve-sim"])
        assert args.scenario is None
        assert args.traffic is None
        assert args.workers == 1
        assert args.no_dedup is False
        assert args.n is None  # scenario presets win unless overridden

    def test_population_path_smoke(self, capsys):
        assert main(
            ["serve-sim", "--n", "800", "--d", "16", "--k", "2",
             "--traffic", "soak", "--progress", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving bounded_change" in out
        assert "traffic=soak" in out
        assert "within the fault-adjusted conformance radius" in out

    def test_scenario_path_with_overrides(self, capsys):
        assert main(
            ["serve-sim", "--scenario", "flash_crowd", "--n", "1000",
             "--d", "16", "--workers", "2", "--progress", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving flash_crowd" in out
        assert "workers=2" in out

    def test_rate_overrides_reach_the_traffic_model(self, capsys):
        assert main(
            ["serve-sim", "--n", "800", "--d", "16", "--k", "2",
             "--duplicate-rate", "0.2", "--no-dedup", "--progress", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "dedup=off" in out
        assert "duplicate" in out

    def test_faults_flag_drills_recovery(self, capsys):
        assert main(
            ["serve-sim", "--n", "800", "--d", "16", "--k", "2",
             "--faults", "chaos", "--progress", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "supervision:" in out
        assert "simulated backoff" in out
        assert "within the fault-adjusted conformance radius" in out

    def test_journal_kill_resume_round_trip(self, capsys, tmp_path):
        journal = tmp_path / "journal"
        # d=32 so the default snapshot cadence (16) leaves a mid-run
        # snapshot for the resume to restart from.
        base = ["serve-sim", "--n", "800", "--d", "32", "--k", "2",
                "--progress", "0", "--journal", str(journal)]
        assert main(base) == 0
        capsys.readouterr()
        # A second run without --resume must refuse to clobber the journal.
        assert main(base) == 1
        assert "resume" in capsys.readouterr().err
        assert main([*base, "--resume"]) == 0
        assert "resumed from the journal" in capsys.readouterr().out

    def test_unknown_fault_model_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--faults", "nope"])

    def test_unknown_scenario_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--scenario", "nope"])

    def test_unknown_traffic_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--traffic", "nope"])

    def test_heavy_domain_is_not_servable(self):
        # heavy_domain states hold item ids, not ±1 reports; the parser
        # never offers it.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--scenario", "heavy_domain"])

"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.scale == "small"
        assert args.seed == 0

    def test_cgap_requires_k(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cgap"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E10" in output

    def test_run_e1(self, capsys):
        assert main(["run", "E1"]) == 0
        output = capsys.readouterr().out
        assert "I_{1,1}" in output

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "E42"])

    def test_run_with_json_output(self, capsys, tmp_path):
        target = tmp_path / "results"
        assert main(["run", "E1", "--json", str(target)]) == 0
        payload = json.loads((target / "E1.json").read_text())
        assert payload["columns"][0] == "interval"

    def test_cgap_command(self, capsys):
        assert main(["cgap", "--k", "16", "--epsilon", "0.5"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["k"] == 16
        assert payload["c_gap"] > 0
        assert payload["privacy_log_ratio"] <= 0.5 + 1e-9

    def test_verify_command(self, capsys):
        assert main(["verify", "--k", "8", "--epsilon", "1.0"]) == 0
        output = capsys.readouterr().out
        assert "lemma52" in output
        assert "FAILED" not in output

    def test_communication_command(self, capsys):
        assert main(["communication", "--d", "64"]) == 0
        output = capsys.readouterr().out
        assert "future_rand" in output
        assert "naive_rr_split" in output

    def test_simulate_command(self, capsys):
        assert main(
            ["simulate", "--n", "500", "--d", "16", "--k", "2", "--seed", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert "max |error|" in output

    def test_simulate_with_consistency(self, capsys):
        assert main(
            [
                "simulate", "--n", "500", "--d", "16", "--k", "2",
                "--consistency",
            ]
        ) == 0
        assert "+consistency" in capsys.readouterr().out

    def test_simulate_baseline(self, capsys):
        assert main(
            ["simulate", "--protocol", "naive_split", "--n", "300", "--d", "16",
             "--k", "2"]
        ) == 0
        assert "naive_rr_split" in capsys.readouterr().out

    def test_simulate_consistency_rejected_for_baselines(self):
        with pytest.raises(SystemExit):
            main(
                ["simulate", "--protocol", "naive_split", "--n", "100",
                 "--d", "16", "--k", "2", "--consistency"]
            )

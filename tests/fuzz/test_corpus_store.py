"""Corpus store contract: round-trip fidelity, loud corruption, registration.

Mirrors the :mod:`repro.sim.store` artifact conventions the corpus reuses:
content-addressed filenames, embedded checksums, corruption raising
``ArtifactCorruptedError`` (never silently skipped), and atomic writes.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.params import ProtocolParams
from repro.fuzz.corpus import (
    CorpusEntry,
    FuzzCorpus,
    entry_from_record,
    register_corpus,
    replay_entry,
)
from repro.fuzz.engine import run_fuzz
from repro.sim.store import ArtifactCorruptedError

_PARAMS = ProtocolParams(n=600, d=16, k=2, epsilon=1.0)


@pytest.fixture(scope="module")
def outcome():
    return run_fuzz(
        "future_rand", _PARAMS, budget=4, seed=13, trials=2, population_size=4
    )


@pytest.fixture()
def entry(outcome) -> CorpusEntry:
    return entry_from_record(outcome, outcome.ranked[0])


def test_round_trip_preserves_the_entry(tmp_path, outcome, entry):
    corpus = FuzzCorpus(tmp_path)
    path = corpus.write(entry)
    assert path.name == f"{entry.digest}.json"
    (loaded,) = corpus.load_all()
    assert loaded == entry


def test_write_is_idempotent(tmp_path, entry):
    corpus = FuzzCorpus(tmp_path)
    first = corpus.write(entry).read_bytes()
    second = corpus.write(entry).read_bytes()
    assert first == second
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_missing_directory_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError, match="repro fuzz"):
        FuzzCorpus(tmp_path / "absent").load_all()


def test_unparseable_json_raises_corruption(tmp_path, entry):
    corpus = FuzzCorpus(tmp_path)
    corpus.write(entry).write_text("{not json")
    with pytest.raises(ArtifactCorruptedError, match="not readable JSON"):
        corpus.load_all()


def test_checksum_mismatch_raises_corruption(tmp_path, entry):
    corpus = FuzzCorpus(tmp_path)
    path = corpus.write(entry)
    artifact = json.loads(path.read_text())
    artifact["result"]["fitness"] = 999.0
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True))
    with pytest.raises(ArtifactCorruptedError, match="checksum"):
        corpus.load_all()


def test_missing_fields_raise_corruption(tmp_path, entry):
    corpus = FuzzCorpus(tmp_path)
    path = corpus.write(entry)
    artifact = json.loads(path.read_text())
    del artifact["result"]
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True))
    with pytest.raises(ArtifactCorruptedError, match="missing fields"):
        corpus.load_all()


def test_renamed_artifact_raises_corruption(tmp_path, entry):
    corpus = FuzzCorpus(tmp_path)
    path = corpus.write(entry)
    path.rename(tmp_path / f"{'0' * 64}.json")
    with pytest.raises(ArtifactCorruptedError, match="filename"):
        corpus.load_all()


def test_artifact_carries_no_wallclock(tmp_path, entry):
    """Byte-stability across reruns requires meta to be time-free."""
    corpus = FuzzCorpus(tmp_path)
    artifact = json.loads(corpus.write(entry).read_text())
    assert set(artifact["meta"]) == {"git_sha"}


def test_replay_entry_is_bit_identical_with_recorded_kernel(entry):
    metrics = replay_entry(entry)
    assert tuple(tuple(trial) for trial in metrics) == entry.metrics


def test_register_corpus_installs_pinned_scenarios(tmp_path, outcome):
    corpus = FuzzCorpus(tmp_path)
    entries = [
        entry_from_record(outcome, record) for record in outcome.ranked[:2]
    ]
    for item in entries:
        corpus.write(item)
    registry: dict = {}
    names = register_corpus(corpus, registry=registry)
    assert sorted(names) == sorted(e.scenario_name for e in entries)
    for item in entries:
        scenario = registry[item.scenario_name]()
        assert scenario.params == item.params
        assert (scenario.states == item.build_states()).all()
        # Pinned: parameter overrides that disagree are rejected loudly.
        with pytest.raises(ValueError, match="pinned"):
            registry[item.scenario_name](n=item.params.n + 1)
        # Matching values (the shared factory signature) are accepted.
        registry[item.scenario_name](n=item.params.n, d=item.params.d)


def test_scenario_name_is_digest_prefixed(entry):
    assert entry.scenario_name == f"fuzz_{entry.digest[:12]}"


def test_digest_moves_with_every_key_component(entry):
    variants = [
        dataclasses.replace(entry, protocol="erlingsson"),
        dataclasses.replace(entry, seed=entry.seed + 1),
        dataclasses.replace(entry, generation=entry.generation + 1),
        dataclasses.replace(entry, slot=entry.slot + 1),
        dataclasses.replace(entry, trials=entry.trials + 1),
        dataclasses.replace(entry, kernel="fast"),
        dataclasses.replace(
            entry, genome=entry.genome.without_faults()
        )
        if entry.genome.drop_rate or entry.genome.duplicate_rate
        else None,
        dataclasses.replace(
            entry, params=ProtocolParams(n=_PARAMS.n + 1, d=16, k=2, epsilon=1.0)
        ),
    ]
    for variant in variants:
        if variant is not None:
            assert variant.digest != entry.digest

"""Fuzzer determinism: the corpus is a pure function of (seed, budget).

The ISSUE-level contract: running the fuzzer twice with the same seed and
budget produces a byte-identical corpus, at any worker count; changing the
seed changes the search; the budget is an exact evaluation cap; and fault
genes are scored against the fault-adjusted radius (never the raw one).
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.analysis.conformance import fault_adjusted_radius, protocol_radius
from repro.core.params import ProtocolParams
from repro.fuzz.corpus import FuzzCorpus, entry_from_record, replay_entry
from repro.fuzz.engine import (
    CHAOS_CAPABLE_TARGETS,
    FAULT_CAPABLE_TARGETS,
    FUZZ_TARGETS,
    build_runner,
    normalize_genome,
    run_fuzz,
)
from repro.fuzz.genome import random_genome
from repro.protocols import PROTOCOLS

_PARAMS = ProtocolParams(n=800, d=32, k=3, epsilon=1.0)


def _corpus_bytes(tmp_path: pathlib.Path, tag: str, outcome, top: int = 3):
    corpus = FuzzCorpus(tmp_path / tag)
    for record in outcome.ranked[:top]:
        corpus.write(entry_from_record(outcome, record))
    return {
        path.name: path.read_bytes()
        for path in sorted((tmp_path / tag).glob("*.json"))
    }


def test_corpus_is_byte_identical_across_worker_counts(tmp_path):
    blobs = {}
    for workers in (1, 2, 4):
        outcome = run_fuzz(
            "future_rand",
            _PARAMS,
            budget=10,
            seed=11,
            workers=workers,
            trials=2,
            population_size=4,
        )
        blobs[workers] = _corpus_bytes(tmp_path, f"w{workers}", outcome)
    assert blobs[1] == blobs[2] == blobs[4]
    assert len(blobs[1]) == 3


def test_rerun_is_fully_reproducible(tmp_path):
    outcomes = [
        run_fuzz(
            "future_rand",
            _PARAMS,
            budget=8,
            seed=3,
            trials=2,
            population_size=4,
        )
        for _ in range(2)
    ]
    assert outcomes[0].records == outcomes[1].records
    assert _corpus_bytes(tmp_path, "a", outcomes[0]) == _corpus_bytes(
        tmp_path, "b", outcomes[1]
    )


def test_different_seeds_explore_different_genomes():
    a = run_fuzz(
        "future_rand", _PARAMS, budget=6, seed=0, trials=1, population_size=4
    )
    b = run_fuzz(
        "future_rand", _PARAMS, budget=6, seed=999, trials=1, population_size=4
    )
    assert {r.genome.digest() for r in a.records} != {
        r.genome.digest() for r in b.records
    }


def test_budget_is_an_exact_evaluation_cap():
    for budget in (1, 5, 9):
        outcome = run_fuzz(
            "future_rand",
            _PARAMS,
            budget=budget,
            seed=2,
            trials=1,
            population_size=4,
        )
        assert outcome.evaluations == budget
        assert len(outcome.records) == budget


def test_evaluated_genomes_are_never_remeasured():
    outcome = run_fuzz(
        "future_rand", _PARAMS, budget=12, seed=5, trials=1, population_size=4
    )
    digests = [record.genome.digest() for record in outcome.records]
    assert len(digests) == len(set(digests))


def test_ranked_orders_by_fitness_then_digest():
    outcome = run_fuzz(
        "future_rand", _PARAMS, budget=8, seed=4, trials=1, population_size=4
    )
    keys = [(-r.fitness, r.genome.digest()) for r in outcome.ranked]
    assert keys == sorted(keys)


def test_fault_genes_are_scored_against_the_widened_radius():
    outcome = run_fuzz(
        "future_rand", _PARAMS, budget=10, seed=6, trials=1, population_size=4
    )
    c_gap = PROTOCOLS["future_rand"].c_gap(_PARAMS)
    base, _ = protocol_radius("future_rand", _PARAMS, c_gap)
    for record in outcome.records:
        expected = fault_adjusted_radius(
            base,
            _PARAMS,
            drop_rate=record.genome.drop_rate,
            duplicate_rate=record.genome.duplicate_rate,
        )
        assert record.base_radius == base
        assert record.radius == pytest.approx(expected)
        assert record.fitness == pytest.approx(
            record.observed_max_abs / expected
        )


def test_non_engine_targets_normalize_fault_genes_to_zero():
    outcome = run_fuzz(
        "erlingsson", _PARAMS, budget=6, seed=1, trials=1, population_size=4
    )
    for record in outcome.records:
        assert record.genome.drop_rate == 0.0
        assert record.genome.duplicate_rate == 0.0
        assert record.radius == record.base_radius
    rng = np.random.default_rng(0)
    genome = random_genome(rng, _PARAMS.k)
    while not genome.has_chaos:  # make the chaos tier observable
        genome = random_genome(rng, _PARAMS.k)
    for target in FUZZ_TARGETS:
        normalized = normalize_genome(genome, target)
        if target in CHAOS_CAPABLE_TARGETS:
            assert normalized == genome
        elif target in FAULT_CAPABLE_TARGETS:
            assert normalized == genome.without_chaos()
            assert normalized.drop_rate == genome.drop_rate
            assert normalized.duplicate_rate == genome.duplicate_rate
        else:
            assert normalized.drop_rate == 0.0
            assert normalized.duplicate_rate == 0.0
            assert not normalized.has_chaos


def test_service_target_evolves_and_replays_chaos_genes(tmp_path):
    """The chaos seam end-to-end: evolved faults, bit-identical replay.

    The service target must actually explore crash/hang/corrupt genes, and
    a corpus entry carrying them must replay to the recorded metrics —
    injected faults are recovered by supervision, so the measurement stays
    a pure function of the genome.
    """
    outcome = run_fuzz(
        "service", _PARAMS, budget=6, seed=21, trials=1, population_size=4
    )
    chaotic = [r for r in outcome.records if r.genome.has_chaos]
    assert chaotic, "the service target never drew a chaos gene"
    entry = entry_from_record(outcome, chaotic[0])
    corpus = FuzzCorpus(tmp_path)
    corpus.write(entry)
    (loaded,) = corpus.load_all()
    assert loaded == entry
    metrics = replay_entry(loaded)
    assert tuple(tuple(trial) for trial in metrics) == entry.metrics


def test_every_fuzz_target_runs_one_generation():
    for target in FUZZ_TARGETS:
        outcome = run_fuzz(
            target, _PARAMS, budget=2, seed=0, trials=1, population_size=4
        )
        assert outcome.evaluations == 2
        for record in outcome.records:
            assert record.radius > 0
            assert record.fitness >= 0


def test_argument_validation():
    with pytest.raises(ValueError, match="unknown fuzz target"):
        run_fuzz("heavy_hitters", _PARAMS, budget=1)
    with pytest.raises(ValueError, match="budget"):
        run_fuzz("future_rand", _PARAMS, budget=0)
    with pytest.raises(ValueError, match="trials"):
        run_fuzz("future_rand", _PARAMS, budget=1, trials=0)
    with pytest.raises(ValueError, match="population_size"):
        run_fuzz("future_rand", _PARAMS, budget=1, population_size=1)
    with pytest.raises(ValueError, match="kernel"):
        run_fuzz("naive_split", _PARAMS, budget=1, kernel="fast")


def test_build_runner_registry_fast_path_is_the_singleton():
    rng = np.random.default_rng(0)
    genome = normalize_genome(random_genome(rng, 3), "erlingsson")
    assert build_runner("erlingsson", genome, None) is PROTOCOLS["erlingsson"]
    clean = normalize_genome(random_genome(rng, 3), "naive_split")
    assert build_runner("future_rand", clean.without_faults(), None) is (
        PROTOCOLS["future_rand"]
    )

"""`repro fuzz` CLI: exit codes, error paths, and a small happy path.

Exit-code contract: 2 for usage errors (argparse rejects the invocation
before any work), 1 for runtime failures with a readable message on stderr
(missing/corrupt/empty corpus, bound violations), 0 on success.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.protocol == "future_rand"
        assert args.budget == 48
        assert args.seed == 0
        assert args.workers == 1
        assert args.survivors == 3
        assert args.corpus == "results/fuzz"
        assert not args.replay
        assert args.kernel is None

    def test_unknown_protocol_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["fuzz", "--protocol", "nope"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_item_domain_protocols_are_not_fuzz_targets(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["fuzz", "--protocol", "heavy_hitters"])
        assert excinfo.value.code == 2

    def test_budget_zero_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["fuzz", "--budget", "0"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_budget_garbage_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["fuzz", "--budget", "lots"])
        assert excinfo.value.code == 2

    def test_unknown_kernel_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["fuzz", "--kernel", "warp"])
        assert excinfo.value.code == 2


class TestReplayErrors:
    def test_missing_corpus_dir_exits_1(self, capsys, tmp_path):
        code = main(
            ["fuzz", "--replay", "--corpus", str(tmp_path / "absent")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "does not exist" in err and "repro fuzz" in err

    def test_empty_corpus_exits_1(self, capsys, tmp_path):
        code = main(["fuzz", "--replay", "--corpus", str(tmp_path)])
        assert code == 1
        assert "no entries" in capsys.readouterr().err

    def test_corrupt_corpus_exits_1(self, capsys, tmp_path):
        (tmp_path / f"{'a' * 64}.json").write_text("{broken")
        code = main(["fuzz", "--replay", "--corpus", str(tmp_path)])
        assert code == 1
        assert "not readable JSON" in capsys.readouterr().err

    def test_tampered_entry_exits_1(self, capsys, tmp_path):
        args = [
            "fuzz", "--budget", "2", "--seed", "0", "--trials", "1",
            "--population", "4", "--survivors", "1",
            "--n", "600", "--d", "16", "--k", "2",
            "--corpus", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        (path,) = tmp_path.glob("*.json")
        artifact = json.loads(path.read_text())
        artifact["result"]["observed_max_abs"] = 0.0
        path.write_text(json.dumps(artifact, indent=2, sort_keys=True))
        code = main(["fuzz", "--replay", "--corpus", str(tmp_path)])
        assert code == 1
        assert "checksum" in capsys.readouterr().err


class TestHappyPath:
    def test_fuzz_then_replay_round_trip(self, capsys, tmp_path):
        corpus_dir = tmp_path / "corpus"
        args = [
            "fuzz", "--budget", "4", "--seed", "0", "--trials", "1",
            "--population", "4", "--survivors", "2",
            "--n", "600", "--d", "16", "--k", "2",
            "--corpus", str(corpus_dir),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "pinned fuzz_" in out
        assert "2 survivors" in out
        assert len(list(corpus_dir.glob("*.json"))) == 2

        assert main(["fuzz", "--replay", "--corpus", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert out.count("ok") >= 2
        assert "replayed 2 corpus entries" in out

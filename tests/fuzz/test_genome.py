"""Genome encoder properties: validity, identity, and operator determinism.

The fuzzer's correctness rests on three encoder invariants: every genome the
operators can produce builds a *valid, budget-safe* population; the digest
is a faithful identity (any gene change changes it, payload round-trips
preserve it); and the operators are pure functions of the generator they
are handed (bit-for-bit repeatable).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.genome import (
    CHANGE_TIME_MODES,
    GENERATORS,
    MAX_FAULT_RATE,
    FuzzGenome,
    build_population,
    crossover,
    generator_choices,
    mutate,
    random_genome,
)


def _count_changes(states: np.ndarray) -> np.ndarray:
    return (np.diff(states.astype(np.int16), axis=1) != 0).sum(axis=1)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    log_d=st.integers(min_value=2, max_value=5),
    k=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=1, max_value=40),
)
def test_random_genome_builds_budget_safe_population(seed, log_d, k, n):
    """Any drawn genome yields valid int8 {0,1} states with <= k changes."""
    d = 1 << log_d
    k = min(k, d)
    rng = np.random.default_rng(seed)
    genome = random_genome(rng, k)
    population = build_population(genome, d, k)
    states = population.sample(n, np.random.default_rng([seed, 1]))
    assert states.shape == (n, d)
    assert states.dtype == np.int8
    assert set(np.unique(states)) <= {0, 1}
    assert (_count_changes(states) <= k).all()


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    steps=st.integers(min_value=1, max_value=6),
    k=st.integers(min_value=1, max_value=4),
)
def test_mutate_and_crossover_stay_in_the_valid_space(seed, steps, k):
    """Chains of mutations/crossovers never leave the constructor's domain.

    ``FuzzGenome.__post_init__`` validates every gene, so merely building
    the offspring proves validity; the population build proves usability.
    """
    rng = np.random.default_rng(seed)
    a = random_genome(rng, k)
    b = random_genome(rng, k)
    for _ in range(steps):
        a = mutate(a, rng, k)
        b = crossover(a, b, rng)
    d = 16
    build_population(a, d, min(k, d)).sample(5, np.random.default_rng(0))
    build_population(b, d, min(k, d)).sample(5, np.random.default_rng(0))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_operators_are_deterministic(seed):
    """Same generator state in, same genome out — bit for bit."""

    def draw(op):
        return op(np.random.default_rng(seed))

    assert draw(lambda g: random_genome(g, 3)) == draw(
        lambda g: random_genome(g, 3)
    )
    base = random_genome(np.random.default_rng(0), 3)
    other = random_genome(np.random.default_rng(1), 3)
    assert draw(lambda g: mutate(base, g, 3)) == draw(lambda g: mutate(base, g, 3))
    assert draw(lambda g: crossover(base, other, g)) == draw(
        lambda g: crossover(base, other, g)
    )


def test_payload_round_trip_preserves_digest():
    rng = np.random.default_rng(7)
    for _ in range(20):
        genome = random_genome(rng, 4)
        clone = FuzzGenome.from_payload(genome.to_payload())
        assert clone == genome
        assert clone.digest() == genome.digest()


def test_every_field_mutation_changes_the_digest():
    """The corpus artifact key must move when any gene moves."""
    genome = FuzzGenome(
        generator="bounded",
        flip_frac=0.5,
        start_prob=0.25,
        mode="uniform",
        exact_k=False,
        arrival_frac=0.5,
        lifetime_frac=0.5,
        drop_rate=0.1,
        duplicate_rate=0.05,
    )
    baseline = genome.digest()
    changed = {
        "generator": "spike",
        "flip_frac": 0.75,
        "start_prob": 0.5,
        "mode": "late",
        "exact_k": True,
        "arrival_frac": 0.25,
        "lifetime_frac": 0.75,
        "drop_rate": 0.2,
        "duplicate_rate": 0.0,
        "crash_rate": 0.1,
        "hang_rate": 0.15,
        "corrupt_rate": 0.2,
    }
    for field in dataclasses.fields(FuzzGenome):
        variant = dataclasses.replace(genome, **{field.name: changed[field.name]})
        assert variant.digest() != baseline, field.name


def test_generator_choices_excludes_churn_below_k2():
    assert "churn" not in generator_choices(1)
    assert generator_choices(2) == GENERATORS


def test_constructor_rejects_out_of_domain_genes():
    valid = dict(
        generator="bounded",
        flip_frac=0.5,
        start_prob=0.25,
        mode="uniform",
        exact_k=False,
        arrival_frac=0.5,
        lifetime_frac=0.5,
        drop_rate=0.0,
        duplicate_rate=0.0,
    )
    with pytest.raises(ValueError, match="unknown generator"):
        FuzzGenome(**{**valid, "generator": "nope"})
    with pytest.raises(ValueError, match="unknown change-time mode"):
        FuzzGenome(**{**valid, "mode": "nope"})
    with pytest.raises(ValueError, match="flip_frac"):
        FuzzGenome(**{**valid, "flip_frac": 1.5})
    with pytest.raises(ValueError, match="drop_rate"):
        FuzzGenome(**{**valid, "drop_rate": MAX_FAULT_RATE + 0.01})
    with pytest.raises(ValueError, match="schema"):
        FuzzGenome.from_payload({**valid, "schema": 999})
    with pytest.raises(ValueError, match="missing gene"):
        FuzzGenome.from_payload({"schema": 1, "generator": "bounded"})


def test_without_faults_zeroes_only_the_fault_genes():
    genome = FuzzGenome(
        generator="spike",
        flip_frac=0.5,
        start_prob=0.25,
        mode="bursty",
        exact_k=True,
        arrival_frac=0.5,
        lifetime_frac=0.5,
        drop_rate=0.2,
        duplicate_rate=0.1,
    )
    clean = genome.without_faults()
    assert clean.drop_rate == 0.0 and clean.duplicate_rate == 0.0
    assert dataclasses.replace(
        genome, drop_rate=0.0, duplicate_rate=0.0
    ) == clean
    assert clean.without_faults() is clean  # already clean: no new object


def test_chaos_free_payload_keeps_the_legacy_schema():
    """Digest back-compat: a chaos-free genome serializes exactly as v1.

    The committed conformance corpus was written before the chaos genes
    existed; its entry digests hash the genome payload, so a chaos-free
    genome must keep emitting the schema-1 payload byte-for-byte.
    """
    genome = FuzzGenome(
        generator="bounded",
        flip_frac=0.5,
        start_prob=0.25,
        mode="uniform",
        exact_k=False,
        arrival_frac=0.5,
        lifetime_frac=0.5,
        drop_rate=0.1,
        duplicate_rate=0.05,
    )
    assert not genome.has_chaos
    payload = genome.to_payload()
    assert payload["schema"] == 1
    assert not {"crash_rate", "hang_rate", "corrupt_rate"} & set(payload)
    assert FuzzGenome.from_payload(payload) == genome

    chaotic = dataclasses.replace(genome, crash_rate=0.1, hang_rate=0.05)
    assert chaotic.has_chaos
    upgraded = chaotic.to_payload()
    assert upgraded["schema"] == 2
    assert upgraded["crash_rate"] == 0.1
    clone = FuzzGenome.from_payload(upgraded)
    assert clone == chaotic
    assert clone.digest() == chaotic.digest()


def test_without_chaos_zeroes_only_the_chaos_genes():
    genome = FuzzGenome(
        generator="spike",
        flip_frac=0.5,
        start_prob=0.25,
        mode="bursty",
        exact_k=True,
        arrival_frac=0.5,
        lifetime_frac=0.5,
        drop_rate=0.2,
        duplicate_rate=0.1,
        crash_rate=0.1,
        hang_rate=0.05,
        corrupt_rate=0.2,
    )
    clean = genome.without_chaos()
    assert not clean.has_chaos
    assert clean.drop_rate == 0.2 and clean.duplicate_rate == 0.1
    assert clean.without_chaos() is clean  # already clean: no new object
    # without_faults sweeps delivery *and* chaos genes.
    bare = genome.without_faults()
    assert not bare.has_chaos
    assert bare.drop_rate == 0.0 and bare.duplicate_rate == 0.0


def test_all_modes_and_generators_are_buildable():
    """Exhaustive: every discrete gene value maps to a working population."""
    for generator in GENERATORS:
        for mode in CHANGE_TIME_MODES:
            genome = FuzzGenome(
                generator=generator,
                flip_frac=0.3,
                start_prob=0.2,
                mode=mode,
                exact_k=False,
                arrival_frac=0.4,
                lifetime_frac=0.6,
                drop_rate=0.0,
                duplicate_rate=0.0,
            )
            states = build_population(genome, 16, 2).sample(
                8, np.random.default_rng(3)
            )
            assert states.shape == (8, 16)

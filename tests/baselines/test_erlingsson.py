"""Tests for the Erlingsson et al. (2020) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.erlingsson import run_erlingsson, sample_single_change
from repro.core.params import ProtocolParams


class TestSampleSingleChange:
    def test_keeps_at_most_one_change(self, small_states, rng):
        sampled = sample_single_change(small_states, k=3, rng=rng)
        changes = np.count_nonzero(np.diff(sampled, axis=1, prepend=0), axis=1)
        assert changes.max() <= 1

    def test_output_is_integral_of_single_change(self, small_states, rng):
        """Values stay in {-1, 0, 1}: the cumulative sum of a 1-sparse
        derivative (down-changes kept alone integrate to -1 legitimately)."""
        sampled = sample_single_change(small_states, k=3, rng=rng)
        assert set(np.unique(sampled).tolist()) <= {-1, 0, 1}

    def test_kept_change_matches_original_position(self, rng):
        states = np.array([[0, 1, 1, 0]], dtype=np.int8)  # changes at t=2, t=4
        for seed in range(20):
            sampled = sample_single_change(states, k=2, rng=np.random.default_rng(seed))
            deriv = np.diff(sampled[0], prepend=0)
            nonzeros = np.flatnonzero(deriv)
            assert nonzeros.size <= 1
            if nonzeros.size == 1:
                t = nonzeros[0]
                assert t in (1, 3)  # 0-based positions of the true changes
                original = np.diff(states[0], prepend=0)
                assert deriv[t] == original[t]

    def test_expected_value_is_original_over_k(self):
        """E[kept derivative] = X_u / k — the basis of the x k debias."""
        states = np.array([[0, 1, 1, 0]], dtype=np.int8)
        k = 4
        trials = 20_000
        accumulator = np.zeros(4)
        rng = np.random.default_rng(5)
        for _ in range(trials):
            sampled = sample_single_change(states, k=k, rng=rng)
            accumulator += np.diff(sampled[0], prepend=0)
        mean = accumulator / trials
        expected = np.diff(states[0], prepend=0) / k
        assert np.allclose(mean, expected, atol=0.01)


class TestRunErlingsson:
    def test_result_shape(self, small_params, small_states, rng):
        result = run_erlingsson(small_states, small_params, rng)
        assert result.estimates.shape == (small_params.d,)
        assert result.family_name == "erlingsson2020"

    def test_unbiased(self, small_params, small_states):
        trials = 40
        errors = [
            run_erlingsson(
                small_states, small_params, np.random.default_rng(3000 + t)
            ).errors[-1]
            for t in range(trials)
        ]
        mean = float(np.mean(errors))
        standard_error = float(np.std(errors, ddof=1) / np.sqrt(trials))
        assert abs(mean) < 4 * standard_error + 1e-9

    def test_error_grows_linearly_with_k(self, rng):
        """The estimator scale is proportional to k, so on an all-zero
        population (pure noise) the error scales ~k exactly."""
        n, d = 2000, 16
        states = np.zeros((n, d), dtype=np.int8)
        errors = {}
        for k in (2, 8):
            params = ProtocolParams(n=n, d=d, k=k, epsilon=1.0)
            runs = [
                run_erlingsson(states, params, np.random.default_rng(100 + t)).max_abs_error
                for t in range(5)
            ]
            errors[k] = float(np.mean(runs))
        assert errors[8] / errors[2] == pytest.approx(4.0, rel=0.5)

    def test_validation(self, small_params, small_states, rng):
        with pytest.raises(ValueError):
            run_erlingsson(small_states[:, :4], small_params, rng)
        dense = np.zeros_like(small_states)
        dense[0, ::2] = 1
        with pytest.raises(ValueError):
            run_erlingsson(dense, small_params, rng)
        with pytest.raises(ValueError):
            run_erlingsson(np.full_like(small_states, 2), small_params, rng)

"""Tests for the Bun et al. composed randomizer (Algorithm 4, App. A.2)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.bun_composed import (
    BunComposedFamily,
    bun_annulus_law,
    select_bun_parameters,
)
from repro.core.annulus import AnnulusLaw


class TestParameterSelection:
    def test_constraints_hold_across_grid(self):
        """Eq. (45) and Eq. (46) both hold for the selected parameters."""
        for k in (1, 2, 4, 16, 64, 256, 1024):
            for epsilon in (0.25, 0.5, 1.0):
                lam, eps_tilde = select_bun_parameters(k, epsilon)
                assert 0 < lam < 1
                ceiling = (eps_tilde * math.sqrt(k) / (2 * (k + 1))) ** (2 / 3)
                assert lam < ceiling
                reconstructed = 6 * eps_tilde * math.sqrt(k * math.log(1 / lam))
                assert reconstructed == pytest.approx(epsilon, rel=1e-9)

    def test_explicit_lambda_validated(self):
        lam, _ = select_bun_parameters(16, 1.0)
        # A slightly smaller lambda is also admissible.
        smaller, eps_tilde = select_bun_parameters(16, 1.0, lam=lam / 2)
        assert smaller == lam / 2
        assert eps_tilde > 0
        with pytest.raises(ValueError):
            select_bun_parameters(16, 1.0, lam=0.9)

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            select_bun_parameters(0, 1.0)
        with pytest.raises(ValueError):
            select_bun_parameters(4, 0.0)
        with pytest.raises(ValueError):
            select_bun_parameters(4, 1.0, lam=1.5)

    def test_eps_tilde_smaller_than_future_rand(self):
        """Bun et al. must spend a sqrt(ln(1/lam)) factor more budget per
        coordinate: eps~_bun < eps~_ours = eps/(5 sqrt(k))."""
        for k in (16, 64, 256):
            _, eps_tilde = select_bun_parameters(k, 1.0)
            assert eps_tilde < 1.0 / (5 * math.sqrt(k))


class TestBunLaw:
    def test_law_is_normalized(self):
        law = bun_annulus_law(32, 1.0)
        assert law.distance_pmf().sum() == pytest.approx(1.0, abs=1e-9)

    def test_annulus_symmetric_around_kp(self):
        law = bun_annulus_law(64, 1.0)
        lower, upper = law.real_bounds
        kp = 64 * law.flip_probability
        assert (kp - lower) == pytest.approx(upper - kp, rel=1e-9)

    def test_small_k_full_cover_handled(self):
        """At tiny k the symmetric annulus covers every distance; the law must
        degrade gracefully rather than crash."""
        law = bun_annulus_law(1, 1.0)
        assert law.complement_empty
        assert law.c_gap > 0

    def test_cgap_below_future_rand_for_moderate_k(self):
        for k in (16, 64, 256):
            ours = AnnulusLaw.for_future_rand(k, 1.0).c_gap
            theirs = bun_annulus_law(k, 1.0).c_gap
            assert theirs < ours

    def test_theorem_a8_shape(self):
        """The advantage ratio grows like sqrt(ln(k/eps)): it should be within
        a small constant of that prediction across two decades of k."""
        ratios = []
        for k in (16, 256, 4096):
            ours = AnnulusLaw.for_future_rand(k, 1.0).c_gap
            theirs = bun_annulus_law(k, 1.0).c_gap
            ratios.append((ours / theirs) / math.sqrt(math.log(k)))
        assert max(ratios) / min(ratios) < 1.6


class TestBunFamily:
    def test_spawn_and_online_use(self, rng):
        family = BunComposedFamily(k=8, epsilon=1.0)
        randomizer = family.spawn(16, rng)
        outputs = [randomizer.randomize(v) for v in (0, 1, -1, 0)]
        assert all(value in (-1, 1) for value in outputs)

    def test_vectorized_path(self, rng):
        family = BunComposedFamily(k=4, epsilon=1.0)
        values = np.zeros((50, 8), dtype=np.int8)
        values[:, 3] = 1
        output = family.randomize_matrix(values, rng)
        assert output.shape == (50, 8)
        assert set(np.unique(output).tolist()) <= {-1, 1}

    def test_matrix_gap_matches_cgap(self):
        family = BunComposedFamily(k=4, epsilon=1.0)
        rows = 40_000
        values = np.zeros((rows, 4), dtype=np.int8)
        values[:, 0] = 1
        output = family.randomize_matrix(values, np.random.default_rng(9))
        gap = float((output[:, 0] == 1).mean() - (output[:, 0] == -1).mean())
        assert abs(gap - family.c_gap) < 4 * (2.0 / math.sqrt(rows))

    def test_name(self):
        assert BunComposedFamily(k=4, epsilon=1.0).name == "bun_composed"

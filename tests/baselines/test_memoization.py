"""Tests for the memoization baseline and its privacy leakage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.memoization import change_time_leakage, run_memoization
from repro.baselines.naive import run_naive_split
from repro.core.basic_randomizer import keep_probability


class TestAccuracy:
    def test_unbiased(self, small_params, small_states):
        trials = 40
        errors = [
            run_memoization(
                small_states, small_params, np.random.default_rng(600 + t)
            ).errors[-1]
            for t in range(trials)
        ]
        mean = float(np.mean(errors))
        standard_error = float(np.std(errors, ddof=1) / np.sqrt(trials))
        assert abs(mean) < 4 * standard_error + 1e-9

    def test_much_more_accurate_than_split(self, small_params, small_states, rng):
        memoized = run_memoization(small_states, small_params, rng)
        split = run_naive_split(small_states, small_params, rng)
        assert memoized.max_abs_error < split.max_abs_error / 2

    def test_family_name_carries_warning(self, small_params, small_states, rng):
        result = run_memoization(small_states, small_params, rng)
        assert "NOT" in result.family_name

    def test_replay_is_deterministic_per_value(self, small_params, rng):
        """While a user's value is constant, their report never changes."""
        states = np.zeros((small_params.n, small_params.d), dtype=np.int8)
        states[:, small_params.d // 2 :] = 1  # one change per user
        result = run_memoization(states, small_params, rng)
        assert result.estimates.shape == (small_params.d,)

    def test_validation(self, small_params, rng):
        with pytest.raises(ValueError):
            run_memoization(
                np.zeros((3, small_params.d), dtype=np.int8), small_params, rng
            )
        with pytest.raises(ValueError):
            run_memoization(
                np.full((small_params.n, small_params.d), 2), small_params, rng
            )


class TestLeakage:
    def test_change_times_leak_massively(self, rng):
        """The privacy failure the paper warns about: most change times are
        recovered exactly by a passive adversary."""
        n, d = 2000, 32
        states = np.zeros((n, d), dtype=np.int8)
        states[:, 10:] = 1  # everyone changes at t=11
        leakage = change_time_leakage(states, epsilon=1.0, rng=rng)
        # A change is visible iff the two memoized answers differ.  The
        # answer for value 1 is +1 w.p. keep; the answer for value 0 is -1
        # w.p. keep; they differ when both are kept or both are flipped:
        keep = keep_probability(1.0)
        expected = keep**2 + (1 - keep) ** 2
        assert leakage == pytest.approx(expected, abs=0.05)
        assert leakage > 0.5  # far from private

    def test_no_changes_no_leakage(self, rng):
        states = np.zeros((50, 16), dtype=np.int8)
        assert change_time_leakage(states, epsilon=1.0, rng=rng) == 0.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            change_time_leakage(np.zeros(5), epsilon=1.0, rng=rng)

"""Tests for the naive RR, central-tree and offline-tree baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.central import CentralTreeMechanism, run_central_tree
from repro.baselines.naive import run_naive_split, run_naive_unsplit
from repro.baselines.offline_tree import flatten_tree_partial_sums, run_offline_tree
from repro.core.params import ProtocolParams
from repro.dyadic.partial_sums import partial_sums_of_order


class TestNaive:
    def test_split_unbiased(self, small_params, small_states):
        trials = 40
        errors = [
            run_naive_split(
                small_states, small_params, np.random.default_rng(400 + t)
            ).errors[-1]
            for t in range(trials)
        ]
        mean = float(np.mean(errors))
        standard_error = float(np.std(errors, ddof=1) / np.sqrt(trials))
        assert abs(mean) < 4 * standard_error + 1e-9

    def test_unsplit_much_more_accurate(self, small_params, small_states, rng):
        split = run_naive_split(small_states, small_params, rng)
        unsplit = run_naive_unsplit(small_states, small_params, rng)
        assert unsplit.max_abs_error < split.max_abs_error / 3

    def test_split_error_grows_with_d(self, rng):
        n = 2000
        errors = {}
        for d in (16, 128):
            params = ProtocolParams(n=n, d=d, k=2, epsilon=1.0)
            states = np.zeros((n, d), dtype=np.int8)
            errors[d] = run_naive_split(states, params, np.random.default_rng(1)).max_abs_error
        assert errors[128] > 3 * errors[16]

    def test_family_names(self, small_params, small_states, rng):
        assert run_naive_split(small_states, small_params, rng).family_name == "naive_rr_split"
        assert (
            run_naive_unsplit(small_states, small_params, rng).family_name
            == "naive_rr_unsplit"
        )

    def test_validation(self, small_params, rng):
        with pytest.raises(ValueError):
            run_naive_split(np.zeros((3, 3, 3)), small_params, rng)
        with pytest.raises(ValueError):
            run_naive_split(
                np.full((small_params.n, small_params.d), 5), small_params, rng
            )


class TestCentral:
    def test_noise_scale_formula(self):
        mechanism = CentralTreeMechanism(d=16, epsilon=0.5, k=3)
        assert mechanism.noise_scale == pytest.approx(2 * 3 * 5 / 0.5)

    def test_estimates_concentrate_around_truth(self, small_params, small_states):
        trials = 30
        errors = [
            run_central_tree(
                small_states, small_params, np.random.default_rng(10 + t)
            ).errors[-1]
            for t in range(trials)
        ]
        mean = float(np.mean(errors))
        standard_error = float(np.std(errors, ddof=1) / np.sqrt(trials))
        assert abs(mean) < 4 * standard_error + 1e-9

    def test_error_independent_of_n(self, rng):
        d, k = 32, 2
        errors = {}
        for n in (100, 10_000):
            params = ProtocolParams(n=n, d=d, k=k, epsilon=1.0)
            states = np.zeros((n, d), dtype=np.int8)
            states[: n // 2, d // 2 :] = 1  # half the users adopt midway
            runs = [
                run_central_tree(states, params, np.random.default_rng(t)).max_abs_error
                for t in range(10)
            ]
            errors[n] = float(np.mean(runs))
        assert 0.5 < errors[100] / errors[10_000] < 2.0

    def test_fit_required_before_estimate(self):
        mechanism = CentralTreeMechanism(d=8, epsilon=1.0, k=1)
        with pytest.raises(RuntimeError):
            mechanism.estimate(1)

    def test_fit_validates_shape(self, rng):
        mechanism = CentralTreeMechanism(d=8, epsilon=1.0, k=1, rng=rng)
        with pytest.raises(ValueError):
            mechanism.fit(np.zeros(7))

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            CentralTreeMechanism(d=8, epsilon=0.0, k=1)
        with pytest.raises(ValueError):
            CentralTreeMechanism(d=8, epsilon=1.0, k=0)


class TestOfflineTree:
    def test_flatten_layout(self, rng):
        states = rng.integers(0, 2, size=(6, 8)).astype(np.int8)
        flat = flatten_tree_partial_sums(states)
        assert flat.shape == (6, 15)  # 2d - 1 nodes
        assert np.array_equal(flat[:, :8], np.array([
            partial_sums_of_order(row, 0) for row in states
        ]))
        assert np.array_equal(flat[:, 8:12], np.array([
            partial_sums_of_order(row, 1) for row in states
        ]))

    def test_unbiased(self, small_params, small_states):
        trials = 30
        errors = [
            run_offline_tree(
                small_states, small_params, np.random.default_rng(800 + t)
            ).errors[-1]
            for t in range(trials)
        ]
        mean = float(np.mean(errors))
        standard_error = float(np.std(errors, ddof=1) / np.sqrt(trials))
        assert abs(mean) < 4 * standard_error + 1e-9

    def test_hashed_variant_runs(self, small_params, small_states, rng):
        sparsity = small_params.k * small_params.num_orders
        result = run_offline_tree(
            small_states, small_params, rng, buckets=4 * sparsity**2
        )
        assert result.family_name == "offline_tree_hashed"
        assert result.estimates.shape == (small_params.d,)

    def test_bucket_minimum_enforced(self, small_params, small_states, rng):
        with pytest.raises(ValueError):
            run_offline_tree(small_states, small_params, rng, buckets=10)

    def test_validation(self, small_params, rng):
        with pytest.raises(ValueError):
            run_offline_tree(
                np.full((small_params.n, small_params.d), 3), small_params, rng
            )

"""Tests for the median-of-sketches heavy-hitter protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.hashed_frequency import HashedFrequencyProtocol
from repro.extensions.sketch import MedianSketchProtocol


class TestInterface:
    def test_shape(self, rng):
        protocol = MedianSketchProtocol(m=20, d=8, k=1, epsilon=1.0, repetitions=3)
        items = np.zeros((120, 8), dtype=np.int64)
        estimates = protocol.run(items, rng)
        assert estimates.shape == (8, 20)

    def test_even_repetitions_rejected(self):
        with pytest.raises(ValueError):
            MedianSketchProtocol(m=10, d=8, k=1, epsilon=1.0, repetitions=4)

    def test_too_few_users_rejected(self, rng):
        protocol = MedianSketchProtocol(m=10, d=8, k=1, epsilon=1.0, repetitions=5)
        with pytest.raises(ValueError):
            protocol.run(np.zeros((3, 8), dtype=np.int64), rng)

    def test_repetitions_property(self):
        protocol = MedianSketchProtocol(m=10, d=8, k=1, epsilon=1.0, repetitions=7)
        assert protocol.repetitions == 7

    def test_true_counts_delegates(self):
        items = np.array([[0, 1]])
        assert np.array_equal(
            MedianSketchProtocol.true_counts(items, 2),
            HashedFrequencyProtocol.true_counts(items, 2),
        )


class TestStatistics:
    def test_median_estimate_concentrates(self):
        """Everyone holds item 1: the median estimate approaches n."""
        m, d, n = 10, 8, 600
        protocol = MedianSketchProtocol(m=m, d=d, k=1, epsilon=1.0, repetitions=3)
        items = np.ones((n, d), dtype=np.int64)
        finals = [
            protocol.run(items, np.random.default_rng(trial))[-1, 1]
            for trial in range(20)
        ]
        mean = float(np.mean(finals))
        spread = float(np.std(finals, ddof=1))
        assert abs(mean - n) < 4 * spread / np.sqrt(20) + 0.1 * n

    def test_median_tames_outliers(self):
        """The worst-case per-item error of the median is below the
        single-repetition oracle's on the same population size."""
        m, d, n = 16, 8, 3000
        rng = np.random.default_rng(0)
        items = rng.integers(0, m, size=(n, 1), dtype=np.int64)
        items = np.repeat(items, d, axis=1)
        truth = MedianSketchProtocol.true_counts(items, m).astype(float)
        single = HashedFrequencyProtocol(m=m, d=d, k=1, epsilon=1.0)
        median = MedianSketchProtocol(m=m, d=d, k=1, epsilon=1.0, repetitions=5)
        single_errors, median_errors = [], []
        for trial in range(6):
            single_errors.append(
                np.abs(single.run(items, np.random.default_rng(10 + trial)) - truth).max()
            )
            median_errors.append(
                np.abs(median.run(items, np.random.default_rng(20 + trial)) - truth).max()
            )
        # The median pays sqrt(R) per cohort but trims the max over m items;
        # it should at least be within the same ballpark and usually smaller
        # in the extreme tail.  Assert it is not catastrophically worse.
        assert np.mean(median_errors) < 3 * np.mean(single_errors)

"""Unit tests for the shared sketch layer (hash + Boolean emission stream)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.future_rand import FutureRandFamily
from repro.extensions.sketch_layer import (
    BooleanDyadicStream,
    multiply_shift_bucket,
    random_odd_multiplier,
)


class TestMultiplyShiftBucket:
    def test_range_and_determinism(self):
        rng = np.random.default_rng(0)
        multiplier = random_odd_multiplier(rng)
        items = np.arange(10_000, dtype=np.int64)
        buckets = multiply_shift_bucket(items, multiplier, 64)
        assert buckets.min() >= 0 and buckets.max() < 64
        np.testing.assert_array_equal(
            buckets, multiply_shift_bucket(items, multiplier, 64)
        )

    def test_multiplier_is_odd(self):
        rng = np.random.default_rng(1)
        assert all(int(random_odd_multiplier(rng)) % 2 == 1 for _ in range(50))

    @pytest.mark.parametrize("width", [0, 1, 3, 48])
    def test_rejects_non_power_of_two_width(self, width):
        with pytest.raises(ValueError, match="power of two"):
            multiply_shift_bucket(np.arange(4), np.uint64(3), width)

    def test_collision_rate_near_universal_bound(self):
        rng = np.random.default_rng(2)
        items = np.arange(2_000, dtype=np.int64)
        width = 256
        rates = []
        for _ in range(20):
            buckets = multiply_shift_bucket(
                items, random_odd_multiplier(rng), width
            )
            counts = np.bincount(buckets, minlength=width)
            pairs = (counts * (counts - 1) // 2).sum()
            rates.append(pairs / (items.size * (items.size - 1) // 2))
        # 2-universal guarantee: pairwise collision probability <= 2/width.
        assert np.mean(rates) <= 2.0 / width


class TestBooleanDyadicStream:
    def test_emission_schedule_follows_dyadic_clock(self):
        family = FutureRandFamily(2, 1.0)
        stream = BooleanDyadicStream(64, 8, family, np.random.default_rng(3))
        column = np.zeros(64, dtype=np.int8)
        for t in range(1, 9):
            orders = [order for order, _, _, _ in stream.emissions(t, column)]
            expected = [
                order
                for order in range(4)
                if t % (1 << order) == 0
                and np.count_nonzero(stream.orders == order)
            ]
            assert orders == expected

    def test_reports_are_signs_and_cover_every_user(self):
        family = FutureRandFamily(2, 1.0)
        stream = BooleanDyadicStream(200, 4, family, np.random.default_rng(4))
        column = np.ones(200, dtype=np.int8)
        seen = np.zeros(200, dtype=bool)
        for order, index, members, bits in stream.emissions(4, column):
            assert index == 4 >> order
            assert np.isin(bits, (-1, 1)).all()
            seen[members] = True
        # At t = d every order group closes an interval, so everyone reports.
        assert seen.all()

    def test_signal_beats_noise_in_aggregate(self):
        family = FutureRandFamily(1, 8.0)
        n = 4_000
        stream = BooleanDyadicStream(n, 2, family, np.random.default_rng(5))
        column = np.ones(n, dtype=np.int8)
        total = sum(
            float(bits.sum())
            for t in (1, 2)
            for _, _, _, bits in stream.emissions(t, column)
        )
        # Everyone holds 1; the debiased sum should be strongly positive.
        assert total > 0.2 * n

    def test_sparsity_violation_raises(self):
        family = FutureRandFamily(1, 1.0)
        stream = BooleanDyadicStream(32, 4, family, np.random.default_rng(6))
        with pytest.raises(RuntimeError, match="k-sparsity"):
            for t in range(1, 5):
                list(stream.emissions(t, np.full(32, t % 2, dtype=np.int8)))

    def test_chunked_predraw_matches_unchunked_contract(self):
        """chunk_size bounds the pre-draw transients without changing the
        law: same orders (drawn before b~), same shape/support for b~."""
        family = FutureRandFamily(3, 1.0)
        whole = BooleanDyadicStream(500, 8, family, np.random.default_rng(7))
        chunked = BooleanDyadicStream(
            500, 8, family, np.random.default_rng(7), chunk_size=128
        )
        np.testing.assert_array_equal(whole.orders, chunked.orders)
        assert chunked._b_tilde.shape == whole._b_tilde.shape == (500, 3)
        assert np.isin(chunked._b_tilde, (-1, 1)).all()
        # Same per-coordinate sign law (4-sigma Monte-Carlo band).
        assert abs(
            chunked._b_tilde.mean() - whole._b_tilde.mean()
        ) < 4 * 2 / np.sqrt(1500)

    def test_validates_inputs(self):
        family = FutureRandFamily(1, 1.0)
        with pytest.raises(ValueError, match="at least 1 user"):
            BooleanDyadicStream(0, 4, family, np.random.default_rng(0))
        with pytest.raises(ValueError, match="chunk_size"):
            BooleanDyadicStream(
                10, 4, family, np.random.default_rng(0), chunk_size=0
            )

"""Tests for the richer-domain extensions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.server import Server
from repro.extensions.categorical import CategoricalLongitudinalProtocol
from repro.extensions.heavy_hitters import (
    HeavyHitterTracker,
    precision_at_r,
    top_items,
)
from repro.extensions.range_queries import estimate_range_change, window_change_series
from repro.dyadic.partial_sums import all_partial_sums


class TestCategorical:
    def test_estimates_shape(self, rng):
        protocol = CategoricalLongitudinalProtocol(m=4, d=8, k=2, epsilon=1.0)
        items = np.zeros((100, 8), dtype=np.int64)
        estimates = protocol.run(items, rng)
        assert estimates.shape == (8, 4)

    def test_binary_change_bound(self):
        protocol = CategoricalLongitudinalProtocol(m=4, d=8, k=2, epsilon=1.0)
        assert protocol.binary_change_bound == 3  # k + 1
        assert protocol.domain_size == 4

    def test_unbiased_on_static_population(self):
        """Everyone holds item 2 forever: mean estimate of item 2 -> n."""
        m, d, n = 3, 8, 400
        protocol = CategoricalLongitudinalProtocol(m=m, d=d, k=1, epsilon=1.0)
        items = np.full((n, d), 2, dtype=np.int64)
        finals = []
        for trial in range(30):
            estimates = protocol.run(items, np.random.default_rng(trial))
            finals.append(estimates[-1, 2])
        mean = float(np.mean(finals))
        standard_error = float(np.std(finals, ddof=1) / np.sqrt(len(finals)))
        assert abs(mean - n) < 4 * standard_error + 1e-9

    def test_true_counts_helper(self):
        items = np.array([[0, 1], [1, 1]])
        counts = CategoricalLongitudinalProtocol.true_counts(items, m=2)
        assert counts.tolist() == [[1, 1], [0, 2]]

    def test_validation(self, rng):
        protocol = CategoricalLongitudinalProtocol(m=3, d=8, k=1, epsilon=1.0)
        with pytest.raises(ValueError):
            protocol.run(np.full((5, 8), 3, dtype=np.int64), rng)  # item >= m
        with pytest.raises(ValueError):
            protocol.run(np.zeros((5, 4), dtype=np.int64), rng)  # wrong d
        churner = np.zeros((5, 8), dtype=np.int64)
        churner[0] = [0, 1, 0, 1, 0, 1, 0, 1]  # 7 item changes > k
        with pytest.raises(ValueError):
            protocol.run(churner, rng)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            CategoricalLongitudinalProtocol(m=0, d=8, k=1, epsilon=1.0)
        with pytest.raises(ValueError):
            CategoricalLongitudinalProtocol(m=3, d=7, k=1, epsilon=1.0)


class TestHeavyHitters:
    def test_top_items_ranking(self):
        estimates = np.array([[1.0, 5.0, 3.0], [9.0, 0.0, 2.0]])
        assert top_items(estimates, 2) == [[1, 2], [0, 2]]

    def test_threshold_filters(self):
        estimates = np.array([[1.0, 5.0, 3.0]])
        assert top_items(estimates, 3, threshold=2.5) == [[1, 2]]

    def test_top_items_validation(self):
        with pytest.raises(ValueError):
            top_items(np.zeros(3), 1)
        with pytest.raises(ValueError):
            top_items(np.zeros((2, 3)), 0)

    def test_precision_at_r(self):
        truth = np.array([[10.0, 5.0, 1.0], [1.0, 5.0, 10.0]])
        reported = [[0, 1], [2, 0]]
        assert precision_at_r(reported, truth, 2) == pytest.approx(0.75)

    def test_precision_empty_report(self):
        truth = np.array([[1.0, 2.0]])
        assert precision_at_r([[]], truth, 1) == 0.0

    def test_precision_length_mismatch(self):
        with pytest.raises(ValueError):
            precision_at_r([[0]], np.zeros((2, 3)), 1)

    def test_tracker(self):
        tracker = HeavyHitterTracker(r=2)
        tracker.update(np.array([5.0, 1.0, 9.0]))
        tracker.update(np.array([0.0, 7.0, 2.0]))
        assert tracker.current_top == [1, 2]
        assert tracker.history == [[2, 0], [1, 2]]

    def test_tracker_validation(self):
        with pytest.raises(ValueError):
            HeavyHitterTracker(r=0)
        tracker = HeavyHitterTracker(r=1)
        with pytest.raises(ValueError):
            tracker.update(np.zeros((2, 2)))


class TestRangeQueries:
    def _noiseless_server(self, states_row):
        """A server loaded with exact partial sums (c_gap=1, one 'user' whose
        reports are the exact values) is awkward; instead we exploit that the
        tree maths is deterministic: feed exact sums via the tree directly."""
        d = len(states_row)
        server = Server(d, c_gap=1.0)
        server.register(0, 0)
        server.advance_to(d)
        # Bypass randomization: write exact partial sums scaled so that the
        # server's (1 + log2 d) scaling cancels.
        scale = d.bit_length()
        for interval, value in all_partial_sums(states_row).items():
            server._tree[interval] = value / scale  # noqa: SLF001 (test-only)
        return server

    def test_range_change_matches_truth(self):
        states = [0, 1, 1, 0, 0, 1, 1, 1]
        server = self._noiseless_server(states)
        for left in range(1, 9):
            for right in range(left, 9):
                before = states[left - 2] if left > 1 else 0
                expected = states[right - 1] - before
                assert estimate_range_change(server, left, right) == pytest.approx(
                    expected
                )

    def test_window_series(self):
        states = [0, 1, 1, 0, 0, 1, 1, 1]
        server = self._noiseless_server(states)
        series = window_change_series(server, window=2)
        # Entry t-1 = st[t] - st[t-2] for t > 2; prefix estimate before that.
        assert series[3] == pytest.approx(states[3] - states[1])
        assert series[0] == pytest.approx(states[0])

    def test_validation(self):
        server = self._noiseless_server([0, 1, 1, 0])
        with pytest.raises(ValueError):
            estimate_range_change(server, 3, 2)
        with pytest.raises(ValueError):
            estimate_range_change(server, 1, 9)
        with pytest.raises(ValueError):
            window_change_series(server, 0)

    def test_window_variance_advantage(self):
        """Narrow windows touch fewer noisy nodes than differencing prefixes:
        the decomposition of [t-1..t] has at most 2 intervals while two prefix
        estimates touch up to 2 log2(d)."""
        from repro.dyadic.intervals import decompose_prefix, decompose_range

        t = 255
        window_nodes = len(decompose_range(t - 1, t))
        prefix_nodes = len(decompose_prefix(t)) + len(decompose_prefix(t - 2))
        assert window_nodes < prefix_nodes

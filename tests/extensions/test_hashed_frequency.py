"""Tests for the sign-hash frequency oracle extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.categorical import CategoricalLongitudinalProtocol
from repro.extensions.hashed_frequency import HashedFrequencyProtocol


class TestInterface:
    def test_estimates_shape(self, rng):
        protocol = HashedFrequencyProtocol(m=10, d=8, k=2, epsilon=1.0)
        items = np.zeros((60, 8), dtype=np.int64)
        estimates = protocol.run(items, rng)
        assert estimates.shape == (8, 10)

    def test_binary_change_bound(self):
        protocol = HashedFrequencyProtocol(m=10, d=8, k=3, epsilon=1.0)
        assert protocol.binary_change_bound == 4  # k + 1
        assert protocol.domain_size == 10

    def test_validation(self, rng):
        protocol = HashedFrequencyProtocol(m=5, d=8, k=1, epsilon=1.0)
        with pytest.raises(ValueError):
            protocol.run(np.full((5, 8), 5, dtype=np.int64), rng)
        with pytest.raises(ValueError):
            protocol.run(np.zeros((5, 4), dtype=np.int64), rng)
        churner = np.zeros((5, 8), dtype=np.int64)
        churner[0] = [0, 1, 0, 1, 0, 1, 0, 1]
        with pytest.raises(ValueError):
            protocol.run(churner, rng)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            HashedFrequencyProtocol(m=0, d=8, k=1, epsilon=1.0)
        with pytest.raises(ValueError):
            HashedFrequencyProtocol(m=4, d=8, k=1, epsilon=0.0)


class TestStatistics:
    def test_unbiased_on_static_population(self):
        """Everyone holds item 3 forever: mean estimate of item 3 -> n."""
        m, d, n = 8, 8, 400
        protocol = HashedFrequencyProtocol(m=m, d=d, k=1, epsilon=1.0)
        items = np.full((n, d), 3, dtype=np.int64)
        finals = []
        for trial in range(30):
            estimates = protocol.run(items, np.random.default_rng(trial))
            finals.append(estimates[-1, 3])
        mean = float(np.mean(finals))
        standard_error = float(np.std(finals, ddof=1) / np.sqrt(len(finals)))
        assert abs(mean - n) < 4 * standard_error + 1e-9

    def test_absent_item_estimates_near_zero(self):
        m, d, n = 8, 8, 400
        protocol = HashedFrequencyProtocol(m=m, d=d, k=1, epsilon=1.0)
        items = np.full((n, d), 3, dtype=np.int64)
        finals = []
        for trial in range(30):
            estimates = protocol.run(items, np.random.default_rng(100 + trial))
            finals.append(estimates[-1, 0])
        mean = float(np.mean(finals))
        standard_error = float(np.std(finals, ddof=1) / np.sqrt(len(finals)))
        assert abs(mean) < 4 * standard_error + 1e-9

    def test_domain_size_free_noise(self):
        """Unlike one-hot sampling, the per-item noise does not grow with m."""
        d, n = 8, 300
        items_small = np.zeros((n, d), dtype=np.int64)
        spreads = {}
        for m in (4, 64):
            protocol = HashedFrequencyProtocol(m=m, d=d, k=1, epsilon=1.0)
            finals = [
                protocol.run(items_small, np.random.default_rng(trial))[-1, 0]
                for trial in range(12)
            ]
            spreads[m] = float(np.std(finals, ddof=1))
        assert spreads[64] < 3 * spreads[4]

    def test_true_counts_helper(self):
        items = np.array([[0, 1], [1, 1]])
        counts = HashedFrequencyProtocol.true_counts(items, m=2)
        assert counts.tolist() == [[1, 1], [0, 2]]


class TestAgainstOneHot:
    def test_hashed_beats_one_hot_for_large_domains(self):
        """The motivating trade-off: at m=32 the hash oracle's per-item error
        is smaller than the one-hot coordinate sampler's."""
        m, d, n = 32, 8, 2000
        rng = np.random.default_rng(0)
        items = rng.integers(0, m, size=(n, 1), dtype=np.int64)
        items = np.repeat(items, d, axis=1)
        truth = HashedFrequencyProtocol.true_counts(items, m).astype(float)

        hashed = HashedFrequencyProtocol(m=m, d=d, k=1, epsilon=1.0)
        onehot = CategoricalLongitudinalProtocol(m=m, d=d, k=1, epsilon=1.0)
        hashed_errors, onehot_errors = [], []
        for trial in range(6):
            estimate_hash = hashed.run(items, np.random.default_rng(10 + trial))
            estimate_onehot = onehot.run(items, np.random.default_rng(20 + trial))
            hashed_errors.append(np.abs(estimate_hash - truth).max())
            onehot_errors.append(np.abs(estimate_onehot - truth).max())
        assert np.mean(hashed_errors) < np.mean(onehot_errors)

"""Tests for the experiment registry: every experiment runs and its headline
claim holds at small scale with a fixed seed."""

from __future__ import annotations


import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.sim.results import ResultTable


class TestRegistry:
    def test_all_registered(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 16)}

    def test_lookup_case_insensitive(self):
        assert get_experiment("e3").experiment_id == "E3"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_specs_have_claims(self):
        for spec in EXPERIMENTS.values():
            assert spec.paper_claim
            assert spec.title


class TestE1Figure1:
    def test_runs_and_matches_paper(self):
        table = get_experiment("E1").run()
        assert len(table.rows) == 7  # 2d - 1 intervals for d = 4
        highlighted = [row["interval"] for row in table.rows if row["in_C(3)"]]
        assert highlighted == ["I_{0,3}", "I_{1,1}"]


class TestE2ErrorVsK:
    def test_sqrt_k_scaling(self):
        table = get_experiment("E2").run(scale="small", seed=1)
        fit_rows = [row for row in table.rows if row["protocol"] == "fit"]
        assert len(fit_rows) == 1
        exponent = fit_rows[0]["mean_max_abs"]
        assert 0.25 < exponent < 0.75  # sqrt-like, nowhere near linear


class TestE3ErrorVsD:
    def test_sub_polynomial_in_d(self):
        table = get_experiment("E3").run(scale="small", seed=1)
        fit_rows = [row for row in table.rows if row["protocol"] == "fit"]
        exponent = fit_rows[0]["mean_max_abs"]
        assert exponent < 0.6  # far below naive repetition's ~1.0


class TestE4ErrorVsNEps:
    def test_exponents(self):
        table = get_experiment("E4").run(scale="small", seed=1)
        fits = {row["sweep"]: row["value"] for row in table.rows if "fit" in str(row["sweep"])}
        assert 0.3 < fits["fit_n_exponent"] < 0.7
        assert -1.4 < fits["fit_eps_exponent"] < -0.6


class TestE5VsErlingsson:
    def test_future_rand_wins_at_largest_k(self):
        table = get_experiment("E5").run(scale="small", seed=1)
        rows = [row for row in table.rows]
        largest = max(rows, key=lambda row: row["k"])
        assert largest["winner"] == "future_rand"

    def test_ratio_increases_with_k(self):
        table = get_experiment("E5").run(scale="small", seed=2)
        ratios = [row["ratio_erl_over_fr"] for row in table.rows]
        assert ratios[-1] > ratios[0]


class TestE6CGap:
    def test_normalized_constant_bounded_below(self):
        table = get_experiment("E6").run(scale="small")
        normalized = [
            row["future_normalized"] for row in table.rows if row["k"] >= 4
        ]
        assert min(normalized) > 0.05


class TestE7Privacy:
    def test_all_hold(self):
        table = get_experiment("E7").run(scale="small")
        assert all(row["holds"] == "yes" for row in table.rows)
        assert all(
            row["client_log_ratio"] <= row["epsilon"] + 1e-9 for row in table.rows
        )


class TestE8Bun:
    def test_advantage_tracks_sqrt_log(self):
        table = get_experiment("E8").run(scale="small")
        for row in table.rows:
            ratio = row["advantage_ratio"] / row["predicted_sqrt_log"]
            assert 0.5 < ratio < 2.0


class TestE9Concentration:
    def test_unbiased_and_within_radius(self):
        table = get_experiment("E9").run(scale="small", seed=3)
        assert all(abs(row["bias_z_score"]) < 4.0 for row in table.rows)
        assert all(row["within_radius_fraction"] == 1.0 for row in table.rows)


class TestE10Landscape:
    def test_expected_ordering_at_largest_d(self):
        table = get_experiment("E10").run(scale="small", seed=1)
        last = max(table.rows, key=lambda row: row["d"])
        assert last["central_tree"] < last["future_rand"]
        assert last["naive_unsplit"] < last["future_rand"]

    def test_naive_split_grows_fastest(self):
        table = get_experiment("E10").run(scale="small", seed=1)
        rows = sorted(table.rows, key=lambda row: row["d"])
        naive_growth = rows[-1]["naive_split"] / rows[0]["naive_split"]
        ours_growth = rows[-1]["future_rand"] / rows[0]["future_rand"]
        assert naive_growth > ours_growth


class TestE11Consistency:
    def test_consistency_improves_everywhere(self):
        table = get_experiment("E11").run(scale="small", seed=1)
        assert all(row["improvement"] > 1.0 for row in table.rows)


class TestE12OrderAllocation:
    def test_uniform_beats_root_heavy(self):
        table = get_experiment("E12").run(scale="small", seed=1)
        errors = {row["allocation"]: row["raw_max_abs"] for row in table.rows}
        assert errors["uniform"] < errors["root_heavy"]


class TestE15HeavyHitters:
    def test_recall_perfect_at_base_point_and_degrades_with_domain(self):
        table = get_experiment("E15").run(scale="small", seed=0)
        eps_rows = {
            row["epsilon"]: row for row in table.rows if row["sweep"] == "epsilon"
        }
        # The base operating point (eps=8) decodes every planted heavy.
        assert eps_rows[8.0]["recall"] == 1.0
        # Shrinking the budget cannot improve recall.
        assert eps_rows[4.0]["recall"] <= eps_rows[8.0]["recall"]
        m_rows = sorted(
            (row for row in table.rows if row["sweep"] == "m"),
            key=lambda row: row["m"],
        )
        # More domain bits split the same users across more channels.
        assert m_rows[-1]["recall"] <= m_rows[0]["recall"]
        assert all(0.0 <= row["precision"] <= 1.0 for row in table.rows)


class TestAllExperimentsReturnTables:
    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
    def test_returns_result_table(self, experiment_id):
        table = get_experiment(experiment_id).run(scale="small", seed=0)
        assert isinstance(table, ResultTable)
        assert table.rows
        assert table.title.startswith(experiment_id)

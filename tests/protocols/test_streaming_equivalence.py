"""Streaming sessions vs one-shot drivers: identical output distributions.

Each protocol's ``prepare``/``ingest``/``estimates`` path reimplements its
one-shot driver in deployment shape; these tests pin the two together —
exactly where the rng consumption order coincides, statistically (Monte-Carlo
4-sigma bounds, the same idiom as the batch-vs-object engine tests)
everywhere else.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.protocols import get_protocol

PARAMS = ProtocolParams(n=400, d=16, k=3, epsilon=1.0)


def _signal_states() -> np.ndarray:
    """A population with a visible signal: 250 of 400 users flip at t=5."""
    states = np.zeros((400, 16), dtype=np.int8)
    states[:250, 4:] = 1
    return states


def _stream(protocol, states, rng) -> np.ndarray:
    session = protocol.prepare(PARAMS, rng)
    for t in range(1, PARAMS.d + 1):
        session.ingest(t, states[:, t - 1])
    return session.result().estimates


class TestExactEquivalence:
    def test_memoization_stream_is_bit_identical_to_run(self):
        """Memoization draws all randomness at prepare time, in the same
        order as the one-shot driver — same seed, same outputs exactly."""
        protocol = get_protocol("memoization")
        states = _signal_states()
        run_estimates = protocol.run(
            states, PARAMS, np.random.default_rng(7)
        ).estimates
        stream_estimates = _stream(protocol, states, np.random.default_rng(7))
        np.testing.assert_allclose(stream_estimates, run_estimates)


@pytest.mark.parametrize(
    "name",
    [
        "future_rand",
        "future_rand_object",
        "bun_composed",
        "erlingsson",
        "naive_split",
        "naive_unsplit",
        "memoization",
        "offline_tree",
        "central_tree",
        "categorical",
        "hashed_frequency",
        "sketch_median",
    ],
)
class TestDistributionalEquivalence:
    """Final-period estimates from streaming and one-shot runs must share
    mean (and the streaming path must be unbiased for the truth)."""

    TRIALS = 25

    def test_final_estimate_means_agree(self, name):
        protocol = get_protocol(name)
        states = _signal_states()
        one_shot = np.array(
            [
                protocol.run(
                    states, PARAMS, np.random.default_rng(1000 + t)
                ).estimates[-1]
                for t in range(self.TRIALS)
            ]
        )
        streamed = np.array(
            [
                _stream(protocol, states, np.random.default_rng(2000 + t))[-1]
                for t in range(self.TRIALS)
            ]
        )
        pooled_se = np.sqrt(
            np.var(one_shot, ddof=1) / self.TRIALS
            + np.var(streamed, ddof=1) / self.TRIALS
        )
        tolerance = 4 * pooled_se if pooled_se > 0 else 1e-9
        assert abs(one_shot.mean() - streamed.mean()) <= tolerance
        # Unbiasedness of the streaming path for the true final count.
        true_final = float(states[:, -1].sum())
        if pooled_se > 0:
            stream_se = np.std(streamed, ddof=1) / np.sqrt(self.TRIALS)
            assert abs(streamed.mean() - true_final) < 5 * stream_se

    def test_error_scale_agrees(self, name):
        protocol = get_protocol(name)
        states = _signal_states()
        true_final = float(states[:, -1].sum())
        one_shot = np.array(
            [
                protocol.run(
                    states, PARAMS, np.random.default_rng(3000 + t)
                ).estimates[-1]
                - true_final
                for t in range(15)
            ]
        )
        streamed = np.array(
            [
                _stream(protocol, states, np.random.default_rng(4000 + t))[-1]
                - true_final
                for t in range(15)
            ]
        )
        spread_one_shot = np.std(one_shot, ddof=1)
        spread_streamed = np.std(streamed, ddof=1)
        if spread_one_shot == 0 or spread_streamed == 0:
            # Degenerate only if both paths are deterministic (never the
            # case for the mechanisms here, but keep the guard symmetric).
            assert spread_one_shot == spread_streamed
        else:
            assert 0.3 < spread_streamed / spread_one_shot < 3.0


class TestHeavyHittersEquivalence:
    """heavy_hitters streams vs runs with matching mean and spread.

    Truth-unbiasedness is deliberately NOT asserted: the scalar series is a
    sketch-bucket median, so collisions with other items contribute a
    positive bias the Boolean protocols do not have.
    """

    TRIALS = 20

    def test_mean_and_spread_agree(self):
        protocol = get_protocol("heavy_hitters").with_domain_size(32)
        states = _signal_states()
        one_shot = np.array(
            [
                protocol.run(
                    states, PARAMS, np.random.default_rng(5000 + t)
                ).estimates[-1]
                for t in range(self.TRIALS)
            ]
        )
        streamed = np.array(
            [
                _stream(protocol, states, np.random.default_rng(6000 + t))[-1]
                for t in range(self.TRIALS)
            ]
        )
        pooled_se = np.sqrt(
            np.var(one_shot, ddof=1) / self.TRIALS
            + np.var(streamed, ddof=1) / self.TRIALS
        )
        assert abs(one_shot.mean() - streamed.mean()) <= 4 * max(pooled_se, 1e-9)
        ratio = np.std(streamed, ddof=1) / np.std(one_shot, ddof=1)
        assert 0.3 < ratio < 3.0

    def test_same_seed_is_bit_identical(self):
        protocol = get_protocol("heavy_hitters").with_domain_size(32)
        states = _signal_states()
        run_result = protocol.run(states, PARAMS, np.random.default_rng(17))
        stream_estimates = _stream(protocol, states, np.random.default_rng(17))
        np.testing.assert_array_equal(run_result.estimates, stream_estimates)

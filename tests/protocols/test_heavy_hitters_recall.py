"""Recall/precision regression tests for the heavy_hitters registry protocol.

Operating points are pinned where the per-bit decode SNR
``f * sqrt(n_g) * c_gap / num_orders`` clears ~3, so perfect recall of the
planted heavies is the *expected* behaviour, verified across several seeds —
a recall drop at these seeds is a decoding regression, not noise.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.experiments.e15_heavy_hitters import planted_states
from repro.protocols import HeavyHittersProtocol


def _recall_and_decoded(
    protocol: HeavyHittersProtocol,
    params: ProtocolParams,
    m: int,
    heavies: dict[int, float],
    seed: int,
    **run_kwargs,
):
    states = planted_states(
        params.n, params.d, m, heavies, np.random.default_rng(seed)
    )
    result = protocol.run(
        states, params, np.random.default_rng(seed + 100), **run_kwargs
    )
    decoded = dict(result.heavy_hitters[-1])
    hit = len(set(decoded) & set(heavies))
    return hit / len(heavies), decoded, result


class TestFastConfig:
    """m=64 seconds-scale config: every seed decodes both planted heavies."""

    HEAVIES: ClassVar[dict[int, float]] = {7: 0.45, 21: 0.30}
    PARAMS = ProtocolParams(n=60_000, d=2, k=1, epsilon=8.0)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_perfect_recall(self, seed):
        protocol = HeavyHittersProtocol(64, width=16, top_r=8)
        recall, decoded, result = _recall_and_decoded(
            protocol, self.PARAMS, 64, self.HEAVIES, seed
        )
        assert recall == 1.0
        # Decoded estimates of the planted items carry real signal.
        for item, frequency in self.HEAVIES.items():
            assert decoded[item] > 0.5 * frequency * self.PARAMS.n
        assert result.domain_size == 64

    def test_chunked_run_also_decodes(self):
        protocol = HeavyHittersProtocol(64, width=16, top_r=8)
        recall, _, _ = _recall_and_decoded(
            protocol, self.PARAMS, 64, self.HEAVIES, 10, chunk_size=10_000
        )
        assert recall == 1.0


@pytest.mark.slow
class TestHugeDomainConfig:
    """m=2^18: the huge-domain acceptance point, pinned across seeds."""

    HEAVIES: ClassVar[dict[int, float]] = {123456: 0.50, 7890: 0.30}
    PARAMS = ProtocolParams(n=500_000, d=4, k=1, epsilon=8.0)
    M = 1 << 18

    @pytest.mark.parametrize("seed", [200, 201, 202, 203])
    def test_perfect_recall_at_2_pow_18(self, seed):
        protocol = HeavyHittersProtocol(self.M, width=64, top_r=8)
        recall, decoded, _ = _recall_and_decoded(
            protocol, self.PARAMS, self.M, self.HEAVIES, seed
        )
        assert recall == 1.0
        # Precision@r against the decoded set: spurious decodes are possible
        # but the planted pair must not be crowded out.
        assert len(set(decoded) & set(self.HEAVIES)) == 2

    def test_estimates_track_planted_frequencies(self):
        protocol = HeavyHittersProtocol(self.M, width=64, top_r=8)
        _, decoded, _ = _recall_and_decoded(
            protocol, self.PARAMS, self.M, self.HEAVIES, 200
        )
        for item, frequency in self.HEAVIES.items():
            true_count = frequency * self.PARAMS.n
            assert abs(decoded[item] - true_count) < 0.5 * true_count

"""Registry contract: every registered protocol honours the unified API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolResult
from repro.protocols import (
    PROTOCOLS,
    EstimatesNotReady,
    LongitudinalProtocol,
    get_protocol,
    list_protocols,
    resolve_runner,
)
from repro.workloads.generators import BoundedChangePopulation

TINY_PARAMS = ProtocolParams(n=120, d=8, k=2, epsilon=1.0)

#: The stable public names; removing or renaming one is a breaking API change.
EXPECTED_NAMES = {
    "future_rand",
    "future_rand_object",
    "bun_composed",
    "erlingsson",
    "naive_split",
    "naive_unsplit",
    "memoization",
    "offline_tree",
    "central_tree",
    "categorical",
    "hashed_frequency",
    "sketch_median",
    "heavy_hitters",
}

#: The registry entries that consume item matrices (domain [0, m)).
ITEM_DOMAIN_NAMES = {
    "categorical",
    "hashed_frequency",
    "sketch_median",
    "heavy_hitters",
}


@pytest.fixture(scope="module")
def tiny_states() -> np.ndarray:
    population = BoundedChangePopulation(
        TINY_PARAMS.d, TINY_PARAMS.k, start_prob=0.3
    )
    return population.sample(TINY_PARAMS.n, np.random.default_rng(42))


class TestRegistryShape:
    def test_at_least_eight_protocols(self):
        assert len(PROTOCOLS) >= 8

    def test_names_stable(self):
        assert set(PROTOCOLS) == EXPECTED_NAMES

    def test_keys_match_instance_names(self):
        for name, protocol in PROTOCOLS.items():
            assert protocol.name == name

    def test_get_protocol_unknown_raises_with_known_names(self):
        with pytest.raises(KeyError, match="future_rand"):
            get_protocol("nope")

    def test_instances_are_singletons(self):
        assert get_protocol("future_rand") is get_protocol("future_rand")

    def test_metadata_types(self):
        for protocol in PROTOCOLS.values():
            assert protocol.privacy_model in ("local", "central")
            assert isinstance(protocol.online, bool)
            assert isinstance(protocol.sequence_ldp, bool)
            assert protocol.description

    def test_capability_filters(self):
        assert list_protocols(privacy_model="central") == ["central_tree"]
        assert set(list_protocols(sequence_ldp=False)) == {
            "naive_unsplit",
            "memoization",
        }
        offline = list_protocols(online=False)
        assert offline == ["offline_tree"]
        everything = list_protocols()
        assert set(everything) == EXPECTED_NAMES


class TestResolveRunner:
    def test_resolves_name(self):
        name, runner = resolve_runner("erlingsson")
        assert name == "erlingsson"
        assert runner is get_protocol("erlingsson")

    def test_resolves_instance(self):
        protocol = get_protocol("memoization")
        name, runner = resolve_runner(protocol)
        assert (name, runner) == ("memoization", protocol)

    def test_passes_through_plain_callable(self):
        def my_runner(states, params, rng=None):
            raise NotImplementedError

        name, runner = resolve_runner(my_runner)
        assert name == "my_runner"
        assert runner is my_runner

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_runner(42)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            resolve_runner("not_a_protocol")


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
class TestProtocolContract:
    """Each protocol must run, stream, and advertise honest capabilities."""

    def test_one_shot_run(self, name, tiny_states):
        protocol = get_protocol(name)
        result = protocol.run(tiny_states, TINY_PARAMS, np.random.default_rng(1))
        assert isinstance(result, ProtocolResult)
        assert result.estimates.shape == (TINY_PARAMS.d,)
        assert np.isfinite(result.estimates).all()
        assert np.array_equal(result.true_counts, tiny_states.sum(axis=0))

    def test_instance_is_a_runner_callable(self, name, tiny_states):
        result = get_protocol(name)(tiny_states, TINY_PARAMS, np.random.default_rng(2))
        assert np.isfinite(result.estimates).all()

    def test_streaming_lifecycle(self, name, tiny_states):
        protocol = get_protocol(name)
        session = protocol.prepare(TINY_PARAMS, np.random.default_rng(3))
        for t in range(1, TINY_PARAMS.d + 1):
            delivered = session.ingest(t, tiny_states[:, t - 1])
            assert delivered >= 0
            if protocol.online:
                released = session.estimates()
                assert released.shape == (t,)
                assert np.isfinite(released).all()
            elif t < TINY_PARAMS.d:
                with pytest.raises(EstimatesNotReady):
                    session.estimates()
        result = session.result()
        assert result.estimates.shape == (TINY_PARAMS.d,)
        assert np.isfinite(result.estimates).all()
        assert np.array_equal(result.true_counts, tiny_states.sum(axis=0))

    def test_c_gap_and_communication_metadata(self, name):
        protocol = get_protocol(name)
        assert protocol.c_gap(TINY_PARAMS) > 0
        assert protocol.expected_report_bits(TINY_PARAMS) > 0
        capabilities = protocol.capabilities()
        assert capabilities["name"] == name

    def test_result_before_horizon_raises(self, name, tiny_states):
        session = get_protocol(name).prepare(TINY_PARAMS, np.random.default_rng(4))
        session.ingest(1, tiny_states[:, 0])
        with pytest.raises(EstimatesNotReady):
            session.result()


@pytest.mark.parametrize("name", sorted(ITEM_DOMAIN_NAMES))
class TestItemDomainContract:
    """The item-domain entries advertise and honour their extra surface."""

    def test_capabilities_advertise_domain(self, name):
        protocol = get_protocol(name)
        capabilities = protocol.capabilities()
        assert capabilities["domain_size"] == protocol.domain_size
        assert protocol.domain_size >= 2
        assert capabilities["supports_chunk_size"] is True
        assert capabilities["supports_kernel"] is True

    def test_with_domain_size_returns_resized_instance(self, name):
        protocol = get_protocol(name)
        resized = protocol.with_domain_size(64)
        assert resized is not protocol
        assert resized.domain_size == 64
        assert get_protocol(name).domain_size == protocol.domain_size

    def test_rejects_degenerate_domain(self, name):
        with pytest.raises(ValueError, match="at least 2"):
            get_protocol(name).with_domain_size(1)

    def test_item_run_returns_item_result(self, name):
        from repro.core.protocol import ItemDomainResult

        protocol = get_protocol(name).with_domain_size(8)
        rng = np.random.default_rng(9)
        items = rng.integers(0, 8, size=(TINY_PARAMS.n, 1), dtype=np.int64)
        items = np.repeat(items, TINY_PARAMS.d, axis=1)
        result = protocol.run(items, TINY_PARAMS, np.random.default_rng(10))
        assert isinstance(result, ItemDomainResult)
        assert result.domain_size == 8
        assert np.array_equal(
            result.true_counts, (items == 1).sum(axis=0)
        )

    def test_rejects_items_outside_domain(self, name):
        protocol = get_protocol(name).with_domain_size(4)
        session = protocol.prepare(TINY_PARAMS, np.random.default_rng(0))
        with pytest.raises(ValueError, match="item values"):
            session.ingest(1, np.full(TINY_PARAMS.n, 4, dtype=np.int64))


class TestLegacyExtensionRejection:
    """`sweep`/`resolve_runner` refuse the superseded extension classes."""

    @pytest.mark.parametrize(
        "cls_name, registry_name",
        [
            ("CategoricalLongitudinalProtocol", "categorical"),
            ("HashedFrequencyProtocol", "hashed_frequency"),
            ("MedianSketchProtocol", "sketch_median"),
        ],
    )
    def test_resolve_runner_rejects_class(self, cls_name, registry_name):
        import repro.extensions as extensions

        with pytest.raises(TypeError, match=registry_name):
            resolve_runner(getattr(extensions, cls_name))

    def test_rejects_instances_too(self):
        from repro.extensions import CategoricalLongitudinalProtocol

        legacy = CategoricalLongitudinalProtocol(m=4, d=8, k=2, epsilon=1.0)
        with pytest.raises(TypeError, match="categorical"):
            resolve_runner(legacy)

    def test_sweep_surfaces_readable_error(self):
        from repro.extensions import HashedFrequencyProtocol
        from repro.sim.runner import sweep

        params = ProtocolParams(n=150, d=16, k=2, epsilon=1.0)
        with pytest.raises(TypeError, match="get_protocol"):
            sweep([HashedFrequencyProtocol], params, "k", [2], trials=1, seed=0)

    def test_cli_sweep_exits_2_with_message(self, capsys):
        from unittest import mock

        from repro.cli import main
        from repro.extensions import MedianSketchProtocol

        with mock.patch.dict(
            "repro.protocols.registry.PROTOCOLS",
            {"legacy_sketch": MedianSketchProtocol},
        ):
            code = main(
                [
                    "sweep", "--protocols", "legacy_sketch",
                    "--parameter", "k", "--values", "1",
                    "--n", "100", "--d", "8",
                ]
            )
        assert code == 2
        assert "sketch_median" in capsys.readouterr().err


class TestSessionValidation:
    def test_periods_must_advance_in_order(self, tiny_states):
        session = get_protocol("future_rand").prepare(
            TINY_PARAMS, np.random.default_rng(0)
        )
        session.ingest(1, tiny_states[:, 0])
        with pytest.raises(ValueError, match="expected 2"):
            session.ingest(3, tiny_states[:, 2])
        with pytest.raises(ValueError, match="expected 2"):
            session.ingest(1, tiny_states[:, 0])

    def test_rejects_wrong_shape(self):
        session = get_protocol("future_rand").prepare(
            TINY_PARAMS, np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="shape"):
            session.ingest(1, np.zeros(TINY_PARAMS.n + 1, dtype=np.int8))

    def test_rejects_non_boolean_values(self):
        session = get_protocol("future_rand").prepare(
            TINY_PARAMS, np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="0 or 1"):
            session.ingest(1, np.full(TINY_PARAMS.n, 2, dtype=np.int8))

    def test_rejects_change_budget_violation(self):
        session = get_protocol("future_rand").prepare(
            TINY_PARAMS, np.random.default_rng(0)
        )
        # Everyone toggles every period: k=2 is exhausted at period 3.
        with pytest.raises(ValueError, match="exceeding k"):
            for t in range(1, TINY_PARAMS.d + 1):
                session.ingest(t, np.full(TINY_PARAMS.n, t % 2, dtype=np.int8))

    def test_too_many_periods_rejected(self, tiny_states):
        session = get_protocol("memoization").prepare(
            TINY_PARAMS, np.random.default_rng(0)
        )
        for t in range(1, TINY_PARAMS.d + 1):
            session.ingest(t, tiny_states[:, t - 1])
        with pytest.raises(ValueError):
            session.ingest(TINY_PARAMS.d + 1, tiny_states[:, 0])


class TestProtocolLikeConsumers:
    """The acceptance-criteria integration points."""

    def test_sweep_accepts_names(self):
        from repro.sim.runner import sweep

        params = ProtocolParams(n=150, d=16, k=2, epsilon=1.0)
        table = sweep(
            ["future_rand", "erlingsson"], params, "k", [1, 2], trials=1, seed=0
        )
        protocols = {row["protocol"] for row in table.rows}
        assert protocols == {"future_rand", "erlingsson"}

    def test_sweep_accepts_instances_and_callables_mixed(self):
        from repro.core.vectorized import run_batch
        from repro.sim.runner import sweep

        params = ProtocolParams(n=150, d=16, k=2, epsilon=1.0)
        table = sweep(
            {"ours": get_protocol("future_rand"), "legacy": run_batch},
            params,
            "k",
            [2],
            trials=1,
            seed=0,
        )
        assert {row["protocol"] for row in table.rows} == {"ours", "legacy"}

    def test_run_trials_accepts_name(self, tiny_states):
        from repro.sim.runner import run_trials

        stats = run_trials(
            "naive_unsplit", tiny_states, TINY_PARAMS, trials=2, seed=0
        )
        assert stats.mean_max_abs >= 0

    def test_scenario_run_by_protocol_name(self):
        from repro.workloads.scenarios import url_tracking_scenario

        scenario = url_tracking_scenario(
            n=200, d=16, k=3, rng=np.random.default_rng(5)
        )
        result = scenario.run(np.random.default_rng(6), protocol="memoization")
        assert result.family_name.startswith("memoization")
        assert result.estimates.shape == (16,)

    def test_scenario_streaming_callback_for_registered_protocol(self):
        from repro.workloads.scenarios import url_tracking_scenario

        scenario = url_tracking_scenario(
            n=200, d=16, k=3, rng=np.random.default_rng(5)
        )
        snapshots = []
        scenario.run(
            np.random.default_rng(6),
            protocol="erlingsson",
            callback=snapshots.append,
        )
        assert [snapshot.t for snapshot in snapshots] == list(range(1, 17))

    def test_cli_protocols_lists_registry(self, capsys):
        from repro.cli import main

        assert main(["protocols"]) == 0
        output = capsys.readouterr().out
        for name in EXPECTED_NAMES:
            assert name in output

    def test_cli_run_protocol(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "run-protocol", "naive_split",
                    "--n", "200", "--d", "16", "--k", "2",
                ]
            )
            == 0
        )
        assert "max |error|" in capsys.readouterr().out

    def test_protocol_subclass_needs_no_consumer_changes(self, tiny_states):
        """The plug-in seam: a brand-new protocol works everywhere at once."""
        from repro.protocols import RepeatedRRSession
        from repro.sim.runner import run_trials

        class HalfBudget(LongitudinalProtocol):
            name = "half_budget_rr"
            description = "test-only"

            def c_gap(self, params):
                return 1.0

            def prepare(self, params, rng=None):
                return RepeatedRRSession(
                    params, params.epsilon / 2.0, self.name, rng
                )

        stats = run_trials(
            HalfBudget(), tiny_states, TINY_PARAMS, trials=2, seed=0
        )
        assert np.isfinite(stats.mean_max_abs)

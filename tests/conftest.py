"""Shared fixtures: reproducible generators, small parameter bundles, workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.workloads.generators import BoundedChangePopulation


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_params() -> ProtocolParams:
    """Tiny but non-trivial protocol parameters for fast end-to-end tests."""
    return ProtocolParams(n=300, d=16, k=3, epsilon=1.0)


@pytest.fixture
def small_states(small_params: ProtocolParams) -> np.ndarray:
    """A population matching ``small_params`` with the full change budget."""
    population = BoundedChangePopulation(
        small_params.d, small_params.k, exact_k=True
    )
    return population.sample(small_params.n, np.random.default_rng(777))

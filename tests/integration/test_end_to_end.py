"""Integration tests: full pipelines across modules."""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import hoeffding_radius
from repro.baselines.erlingsson import run_erlingsson
from repro.core.protocol import run_online
from repro.core.vectorized import run_batch
from repro.extensions.categorical import CategoricalLongitudinalProtocol
from repro.extensions.heavy_hitters import precision_at_r, top_items
from repro.sim.engine import SimulationEngine
from repro.workloads.scenarios import telemetry_fleet_scenario, url_tracking_scenario


class TestScenarioPipelines:
    def test_url_tracking_end_to_end(self):
        scenario = url_tracking_scenario(n=500, d=32, k=4, rng=np.random.default_rng(0))
        result = run_batch(scenario.states, scenario.params, np.random.default_rng(1))
        radius = hoeffding_radius(
            scenario.params, result.c_gap, scenario.params.beta / scenario.params.d
        )
        assert result.max_abs_error <= radius

    def test_telemetry_online_engine(self):
        scenario = telemetry_fleet_scenario(
            n=150, d=16, k=3, rng=np.random.default_rng(2)
        )
        snapshots = []
        engine = SimulationEngine(scenario.params, rng=np.random.default_rng(3))
        result = engine.run(scenario.states, snapshots.append)
        assert len(snapshots) == 16
        # The online estimates and the final result agree period by period.
        assert np.allclose(
            [snap.estimate for snap in snapshots], result.estimates
        )
        # Reports arrive every period (the order-0 group reports each time).
        assert all(snap.reports_this_period > 0 for snap in snapshots)

    def test_online_and_batch_drivers_both_track_truth(self):
        scenario = url_tracking_scenario(n=300, d=16, k=3, rng=np.random.default_rng(4))
        online = run_online(scenario.states, scenario.params, np.random.default_rng(5))
        batch = run_batch(scenario.states, scenario.params, np.random.default_rng(6))
        radius = hoeffding_radius(
            scenario.params, online.c_gap, scenario.params.beta / scenario.params.d
        )
        assert online.max_abs_error <= radius
        assert batch.max_abs_error <= radius

    def test_baseline_runs_on_same_scenario(self):
        scenario = url_tracking_scenario(n=300, d=16, k=3, rng=np.random.default_rng(7))
        result = run_erlingsson(scenario.states, scenario.params, np.random.default_rng(8))
        assert result.estimates.shape == (16,)


class TestCategoricalPipeline:
    def test_heavy_hitter_recovery_with_skewed_items(self):
        """With a heavily skewed static item distribution and plenty of users,
        the categorical tracker should recover the top item at the end."""
        m, d, n = 4, 16, 4000
        rng = np.random.default_rng(9)
        items = rng.choice(m, size=(n, 1), p=[0.7, 0.2, 0.05, 0.05])
        items = np.repeat(items, d, axis=1)  # static users
        protocol = CategoricalLongitudinalProtocol(m=m, d=d, k=1, epsilon=1.0)
        estimates = protocol.run(items, np.random.default_rng(10))
        reported = top_items(estimates, r=1)
        truth = CategoricalLongitudinalProtocol.true_counts(items, m)
        # Precision at the final period: item 0 dominates by a huge margin.
        assert reported[-1] == [0]
        assert precision_at_r(reported[-8:], truth[-8:], 1) >= 0.5


class TestReproducibility:
    def test_full_pipeline_is_deterministic(self):
        scenario = url_tracking_scenario(n=200, d=16, k=2, rng=np.random.default_rng(11))
        a = run_batch(scenario.states, scenario.params, np.random.default_rng(12))
        b = run_batch(scenario.states, scenario.params, np.random.default_rng(12))
        assert np.array_equal(a.estimates, b.estimates)

    def test_different_seeds_differ(self):
        scenario = url_tracking_scenario(n=200, d=16, k=2, rng=np.random.default_rng(13))
        a = run_batch(scenario.states, scenario.params, np.random.default_rng(14))
        b = run_batch(scenario.states, scenario.params, np.random.default_rng(15))
        assert not np.array_equal(a.estimates, b.estimates)

"""Property-based integration tests: protocol invariants over random inputs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import hoeffding_radius
from repro.core.params import ProtocolParams
from repro.core.vectorized import collect_tree_reports, run_batch
from repro.postprocess.consistency import (
    consistent_prefix_estimates,
    wls_tree_consistency,
)
from repro.workloads.generators import BoundedChangePopulation


def population_strategy():
    """Strategy producing (params, states) pairs with valid change budgets."""
    return st.tuples(
        st.sampled_from([8, 16, 32]),       # d
        st.integers(min_value=1, max_value=4),  # k
        st.integers(min_value=20, max_value=120),  # n
        st.floats(min_value=0.1, max_value=1.0),  # epsilon
        st.integers(min_value=0, max_value=2**31 - 1),  # seed
    )


class TestProtocolInvariants:
    @given(population_strategy())
    @settings(max_examples=25, deadline=None)
    def test_batch_runs_and_stays_within_radius(self, config):
        d, k, n, epsilon, seed = config
        params = ProtocolParams(n=n, d=d, k=k, epsilon=epsilon)
        rng = np.random.default_rng(seed)
        states = BoundedChangePopulation(d, k).sample(n, rng)
        result = run_batch(states, params, rng)
        assert result.estimates.shape == (d,)
        assert np.isfinite(result.estimates).all()
        radius = hoeffding_radius(params, result.c_gap, 1e-6)  # generous band
        assert result.max_abs_error <= radius

    @given(population_strategy())
    @settings(max_examples=15, deadline=None)
    def test_group_sizes_partition_population(self, config):
        d, k, n, epsilon, seed = config
        params = ProtocolParams(n=n, d=d, k=k, epsilon=epsilon)
        rng = np.random.default_rng(seed)
        states = BoundedChangePopulation(d, k).sample(n, rng)
        reports = collect_tree_reports(states, params, rng)
        assert int(reports.group_sizes.sum()) == n
        # Raw node sums cannot exceed the group size in magnitude (each
        # member contributes one +-1 bit per node of its own order).
        for order in range(reports.num_orders):
            assert np.abs(reports.node_sums[order]).max(initial=0) <= (
                reports.group_sizes[order]
            )

    @given(population_strategy())
    @settings(max_examples=15, deadline=None)
    def test_consistency_preserves_finiteness_and_shape(self, config):
        d, k, n, epsilon, seed = config
        params = ProtocolParams(n=n, d=d, k=k, epsilon=epsilon)
        rng = np.random.default_rng(seed)
        states = BoundedChangePopulation(d, k).sample(n, rng)
        reports = collect_tree_reports(states, params, rng)
        estimates = consistent_prefix_estimates(reports)
        assert estimates.shape == (d,)
        assert np.isfinite(estimates).all()

    @given(population_strategy())
    @settings(max_examples=15, deadline=None)
    def test_consistent_tree_prefixes_match_leaf_cumsum(self, config):
        d, k, n, epsilon, seed = config
        params = ProtocolParams(n=n, d=d, k=k, epsilon=epsilon)
        rng = np.random.default_rng(seed)
        states = BoundedChangePopulation(d, k).sample(n, rng)
        reports = collect_tree_reports(states, params, rng)
        adjusted = wls_tree_consistency(
            reports.node_estimates(), reports.node_variances()
        )
        # Consistency means every dyadic reconstruction equals the leaf cumsum.
        from repro.dyadic.intervals import decompose_prefix

        leaf_cumsum = np.cumsum(adjusted[0])
        for t in (1, d // 2, d - 1, d):
            via_decomposition = sum(
                adjusted[interval.order][interval.index - 1]
                for interval in decompose_prefix(t)
            )
            assert via_decomposition == pytest.approx(leaf_cumsum[t - 1], abs=1e-6)

"""Tests for the argument validators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    _has_only_ternary_entries,
    check_power_of_two,
    check_privacy_budget,
    check_probability,
    check_sign_vector,
    check_sparse_signs,
    check_ternary_matrix,
    ensure_int,
    ensure_positive,
)


class TestCheckTernaryMatrix:
    @pytest.mark.parametrize(
        "dtype", [np.int8, np.int64, np.uint8, np.float64, bool]
    )
    def test_accepts_valid_entries_any_dtype(self, dtype):
        matrix = np.array([[0, 1, 0], [1, 0, 1]]).astype(dtype)
        result = check_ternary_matrix(matrix)
        assert result.shape == (2, 3)

    def test_accepts_negative_ones(self):
        check_ternary_matrix(np.array([[-1, 0, 1]], dtype=np.int8))
        check_ternary_matrix(np.array([[-1.0, 0.0, 1.0]]))

    @pytest.mark.parametrize("bad", [2, -2, 0.5, np.nan])
    def test_rejects_out_of_range_entries(self, bad):
        matrix = np.array([[0.0, 1.0, float(bad)]])
        with pytest.raises(ValueError, match="must all be in"):
            check_ternary_matrix(matrix)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            check_ternary_matrix(np.array([0, 1, 0]))

    def test_error_message_uses_name(self):
        with pytest.raises(ValueError, match="states entries"):
            check_ternary_matrix(np.array([[5]]), "states")

    def test_entry_scan_handles_1d_float_fallback(self):
        # The blockwise isin fallback must also cope with 1-D input when
        # called directly (the 2-D check lives in check_ternary_matrix).
        assert _has_only_ternary_entries(np.array([0.0, 1.0, -1.0]))
        assert not _has_only_ternary_entries(np.array([0.5]))

    def test_large_float_matrix_scanned_in_blocks(self):
        matrix = np.zeros((10_000, 3), dtype=np.float64)
        matrix[9_999, 2] = 7.0  # violation in the last block
        assert not _has_only_ternary_entries(matrix)


class TestEnsureInt:
    def test_int_passthrough(self):
        assert ensure_int(5, "x") == 5

    def test_numpy_integer(self):
        assert ensure_int(np.int64(7), "x") == 7

    def test_integral_float(self):
        assert ensure_int(4.0, "x") == 4

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            ensure_int(True, "x")

    def test_fractional_rejected(self):
        with pytest.raises(TypeError):
            ensure_int(4.5, "x")

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            ensure_int("4", "x")


class TestEnsurePositive:
    def test_positive(self):
        assert ensure_positive(1, "x") == 1

    @pytest.mark.parametrize("value", [0, -1, -100])
    def test_non_positive_rejected(self, value):
        with pytest.raises(ValueError):
            ensure_positive(value, "x")


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 8, 1024, 2**20])
    def test_accepts_powers(self, value):
        assert check_power_of_two(value) == value

    @pytest.mark.parametrize("value", [3, 5, 6, 7, 12, 1000])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ValueError):
            check_power_of_two(value)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_power_of_two(0)


class TestCheckProbability:
    def test_accepts_interior(self):
        assert check_probability(0.5, "p") == 0.5

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_boundary_and_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestCheckPrivacyBudget:
    def test_accepts_positive(self):
        assert check_privacy_budget(0.5) == 0.5
        assert check_privacy_budget(3.0) == 3.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            check_privacy_budget(0.0)

    def test_regime_guard(self):
        assert check_privacy_budget(1.0, require_at_most_one=True) == 1.0
        with pytest.raises(ValueError):
            check_privacy_budget(1.5, require_at_most_one=True)


class TestCheckSignVector:
    def test_accepts_signs(self):
        result = check_sign_vector([1, -1, 1])
        assert result.dtype == np.int8
        assert result.tolist() == [1, -1, 1]

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            check_sign_vector([1, 0, -1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_sign_vector([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_sign_vector(np.ones((2, 2)))


class TestCheckSparseSigns:
    def test_accepts_sparse(self):
        result = check_sparse_signs([0, 1, 0, -1], k=2)
        assert result.dtype == np.int8

    def test_rejects_dense(self):
        with pytest.raises(ValueError):
            check_sparse_signs([1, 1, -1], k=2)

    def test_rejects_other_values(self):
        with pytest.raises(ValueError):
            check_sparse_signs([0, 2, 0], k=2)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_sparse_signs(np.zeros((2, 3)), k=2)

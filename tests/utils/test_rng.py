"""Tests for seeded generator management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_seed_sequence(self):
        sequence = np.random.SeedSequence(9)
        a = as_generator(np.random.SeedSequence(9)).random()
        b = as_generator(sequence).random()
        assert a == b


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 7)) == 7

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_reproducible_from_int(self):
        first = [g.random() for g in spawn_generators(5, 3)]
        second = [g.random() for g in spawn_generators(5, 3)]
        assert first == second

    def test_streams_differ(self):
        values = [g.random() for g in spawn_generators(5, 10)]
        assert len(set(values)) == 10

    def test_from_generator_is_deterministic_given_state(self):
        parent_a = np.random.default_rng(3)
        parent_b = np.random.default_rng(3)
        a = [g.random() for g in spawn_generators(parent_a, 2)]
        b = [g.random() for g in spawn_generators(parent_b, 2)]
        assert a == b


class TestRngFactory:
    def test_reproducible_sequence_of_children(self):
        first = [g.random() for g in RngFactory(1).make_many(4)]
        second = [g.random() for g in RngFactory(1).make_many(4)]
        assert first == second

    def test_spawned_counter(self):
        factory = RngFactory(0)
        factory.make()
        factory.make_many(3)
        assert factory.spawned == 4

    def test_children_independent(self):
        factory = RngFactory(0)
        a, b = factory.make(), factory.make()
        assert a.random() != b.random()

    def test_stream_yields_generators(self):
        factory = RngFactory(0)
        stream = factory.stream()
        first = next(stream)
        second = next(stream)
        assert isinstance(first, np.random.Generator)
        assert first.random() != second.random()

    def test_negative_make_many_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(0).make_many(-2)

"""Unit and property tests for the log-space numeric primitives."""

from __future__ import annotations

import math
from decimal import Decimal, localcontext

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.numerics import (
    LOG_ZERO,
    log1mexp,
    log_add,
    log_binom,
    log_binom_range_sum,
    log_binom_row,
    log_sub,
    logsumexp,
    logsumexp_pairs,
    stable_exp_diff,
    weighted_mean,
)


class TestLogBinom:
    def test_matches_math_comb_small(self):
        for n in range(0, 25):
            for i in range(0, n + 1):
                expected = math.log(math.comb(n, i))
                assert log_binom(n, i) == pytest.approx(expected, abs=1e-9)

    def test_out_of_range_is_log_zero(self):
        assert log_binom(5, -1) == LOG_ZERO
        assert log_binom(5, 6) == LOG_ZERO

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            log_binom(-1, 0)

    def test_large_n_is_finite(self):
        value = log_binom(10**6, 10**6 // 2)
        assert math.isfinite(value)
        # log C(n, n/2) ~ n ln 2 - 0.5 ln(pi n / 2)
        approx = 10**6 * math.log(2) - 0.5 * math.log(math.pi * 10**6 / 2)
        assert value == pytest.approx(approx, rel=1e-6)

    @given(st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=300))
    def test_symmetry(self, n, i):
        if i <= n:
            assert log_binom(n, i) == pytest.approx(log_binom(n, n - i), abs=1e-8)


class TestLogBinomRow:
    def test_matches_per_element(self):
        row = log_binom_row(40)
        for i, value in enumerate(row):
            assert value == pytest.approx(log_binom(40, i), abs=1e-8)

    def test_row_zero(self):
        assert log_binom_row(0) == [0.0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            log_binom_row(-3)


class TestLogSumExp:
    def test_empty_is_log_zero(self):
        assert logsumexp([]) == LOG_ZERO

    def test_all_log_zero(self):
        assert logsumexp([LOG_ZERO, LOG_ZERO]) == LOG_ZERO

    def test_matches_naive(self):
        values = [-1.0, -2.5, 0.3]
        expected = math.log(sum(math.exp(v) for v in values))
        assert logsumexp(values) == pytest.approx(expected, abs=1e-12)

    def test_extreme_values_no_overflow(self):
        assert logsumexp([1000.0, 1000.0]) == pytest.approx(1000.0 + math.log(2))
        assert logsumexp([-2000.0, -2000.0]) == pytest.approx(-2000.0 + math.log(2))

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=20))
    def test_bounds_property(self, values):
        result = logsumexp(values)
        peak = max(values)
        assert peak <= result <= peak + math.log(len(values)) + 1e-9


def _signed_sum_reference(
    pairs: list[tuple[float, float]],
) -> tuple[Decimal, Decimal]:
    """High-precision reference for the signed sum ``S = sum(sign * e^log_abs)``.

    Computed with 60-digit ``Decimal`` arithmetic so the reference neither
    underflows (the float-space naive sum does, e.g. for the pinned
    counterexample below) nor loses the tiny residue of a near-total
    cancellation.  Returns ``(S, mass)`` where ``mass = sum(e^log_abs)``.
    """
    with localcontext() as context:
        context.prec = 60
        total = Decimal(0)
        mass = Decimal(0)
        for log_abs, sign in pairs:
            term = Decimal(log_abs).exp()
            total += Decimal(sign) * term
            mass += term
        return total, mass


class TestLogSumExpPairs:
    def test_cancellation_to_zero(self):
        log_abs, sign = logsumexp_pairs([(0.0, 1.0), (0.0, -1.0)])
        assert sign == 0.0
        assert log_abs == LOG_ZERO

    def test_underflow_counterexample_regression(self):
        # Shrunk hypothesis counterexample: the naive float-space reference
        # sum e^{4.49e-34} - e^0 underflows to exactly 0.0, while the
        # log-space path correctly resolves log|S| = log(4.49e-34) ~ -76.8.
        pairs = [(0.0, -1.0), (4.49e-34, 1.0)]
        log_abs, sign = logsumexp_pairs(pairs)
        assert sign == 1.0
        assert log_abs == pytest.approx(math.log(4.49e-34), rel=1e-12)

    def test_equal_mass_cancellation_contract(self):
        # The documented contract: when the positive and negative logsumexp
        # reductions agree to float precision, the sum is reported as an
        # exact zero even though the true sum is a few ulps of the mass.
        pairs = [(0.0, 1.0), (0.0, 1.0), (math.log(2.0), -1.0)]
        assert logsumexp_pairs(pairs) == (LOG_ZERO, 0.0)

    def test_positive_dominates(self):
        log_abs, sign = logsumexp_pairs([(1.0, 1.0), (0.0, -1.0)])
        assert sign == 1.0
        expected = math.log(math.e - 1.0)
        assert log_abs == pytest.approx(expected, abs=1e-10)

    def test_negative_dominates(self):
        log_abs, sign = logsumexp_pairs([(0.0, 1.0), (1.0, -1.0)])
        assert sign == -1.0

    def test_empty(self):
        log_abs, sign = logsumexp_pairs([])
        assert (log_abs, sign) == (LOG_ZERO, 0.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-20, max_value=20),
                st.sampled_from([-1.0, 1.0]),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_matches_naive_signed_sum(self, pairs):
        total, mass = _signed_sum_reference(pairs)
        log_abs, sign = logsumexp_pairs(pairs)
        if sign == 0.0:
            # Documented contract: a reported exact zero means the positive
            # and negative reductions agreed to float precision, so the true
            # sum is at most a few ulps of the total mass.
            assert abs(total) <= Decimal("1e-12") * mass
        elif total == 0:
            # The reference cancels exactly but float rounding inside the two
            # logsumexp reductions (e.g. different summation orders) left a
            # residue; it must be ulp-sized relative to the mass.
            assert math.exp(log_abs) <= 1e-12 * float(mass)
        else:
            assert sign == (1.0 if total > 0 else -1.0)
            # Near-total cancellation amplifies relative error by the
            # condition number mass/|total|; tolerate accordingly.
            condition = float(mass / abs(total))
            tolerance = max(1e-9, 1e-13 * condition)
            assert math.exp(log_abs) == pytest.approx(
                float(abs(total)), rel=tolerance
            )


class TestLog1mExp:
    def test_small_delta_branch(self):
        delta = 0.1
        assert log1mexp(delta) == pytest.approx(math.log(1 - math.exp(-delta)), abs=1e-12)

    def test_large_delta_branch(self):
        delta = 10.0
        assert log1mexp(delta) == pytest.approx(math.log(1 - math.exp(-delta)), abs=1e-12)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            log1mexp(0.0)
        with pytest.raises(ValueError):
            log1mexp(-1.0)


class TestLogAddSub:
    def test_log_add_identity(self):
        assert log_add(LOG_ZERO, 1.5) == 1.5
        assert log_add(1.5, LOG_ZERO) == 1.5

    def test_log_add_matches_naive(self):
        assert log_add(-1.0, -2.0) == pytest.approx(
            math.log(math.exp(-1.0) + math.exp(-2.0)), abs=1e-12
        )

    def test_log_sub_matches_naive(self):
        assert log_sub(-1.0, -2.0) == pytest.approx(
            math.log(math.exp(-1.0) - math.exp(-2.0)), abs=1e-12
        )

    def test_log_sub_equal_args(self):
        assert log_sub(2.0, 2.0) == LOG_ZERO

    def test_log_sub_rejects_negative_result(self):
        with pytest.raises(ValueError):
            log_sub(-2.0, -1.0)

    def test_log_sub_log_zero_subtrahend(self):
        assert log_sub(3.0, LOG_ZERO) == 3.0


class TestStableExpDiff:
    def test_both_log_zero(self):
        assert stable_exp_diff(LOG_ZERO, LOG_ZERO) == 0.0

    def test_one_sided(self):
        assert stable_exp_diff(0.0, LOG_ZERO) == pytest.approx(1.0)
        assert stable_exp_diff(LOG_ZERO, 0.0) == pytest.approx(-1.0)

    def test_close_values_preserve_precision(self):
        a = -5.0
        b = -5.0 + 1e-12
        result = stable_exp_diff(b, a)
        expected = math.exp(-5.0) * 1e-12
        assert result == pytest.approx(expected, rel=1e-3)

    @given(
        st.floats(min_value=-50, max_value=50),
        st.floats(min_value=-50, max_value=50),
    )
    def test_matches_naive_up_to_float_resolution(self, a, b):
        # The stable version can be *more* accurate than naive subtraction
        # (which rounds tiny differences to zero), so compare with an absolute
        # tolerance at the resolution of the larger operand.
        tolerance = 1e-12 * max(math.exp(a), math.exp(b))
        assert stable_exp_diff(a, b) == pytest.approx(
            math.exp(a) - math.exp(b), abs=tolerance
        )


class TestLogBinomRangeSum:
    def test_full_range_is_2_to_n(self):
        assert log_binom_range_sum(20, 0, 20) == pytest.approx(20 * math.log(2), abs=1e-9)

    def test_clipping(self):
        assert log_binom_range_sum(10, -5, 3) == pytest.approx(
            math.log(sum(math.comb(10, i) for i in range(0, 4))), abs=1e-9
        )

    def test_empty_range(self):
        assert log_binom_range_sum(10, 7, 3) == LOG_ZERO


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_weighting(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

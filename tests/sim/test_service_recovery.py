"""End-to-end fault tolerance: chaos bit-identity, degradation, recovery.

The three service-level guarantees this file pins, each stated in
ISSUE/README terms:

* **Chaos bit-identity** — a run with injected crashes/hangs/corruptions
  (recovered by supervised retries) releases byte-for-byte the estimates,
  true counts, and delivery stats of the fault-free run, at any worker
  count.
* **Journal recovery** — a run killed at *any* point of its write-ahead
  journal and resumed with ``resume=True`` reproduces the uninterrupted
  released stream exactly, including the delivery counters.
* **Graceful degradation** — a permanently lost block downgrades the run
  (``degraded=True``) instead of failing it, with the loss folded into the
  effective drop rate the fault-adjusted radius is computed from.
"""

from __future__ import annotations

import functools
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.conformance import fault_adjusted_radius, protocol_radius
from repro.core.params import ProtocolParams
from repro.faults import FaultModel, RetryPolicy
from repro.sim.journal import JournalError, ServiceJournal, _record_checksum
from repro.sim.service import run_service
from repro.sim.store import canonical_json
from repro.workloads.generators import BoundedChangePopulation

PARAMS = ProtocolParams(n=2000, d=32, k=3, epsilon=1.0)
#: Small blocks so the run shards into several supervised units
#: (n=2000 / 512 -> 4 blocks).
BLOCK_ROWS = 512

#: Every block faulted exactly once (rates sum to 1), every fault
#: recovered on the first retry — chaos with full coverage.
ALWAYS_FAULT = FaultModel(
    name="always", crash_rate=0.5, hang_rate=0.25, corrupt_rate=0.25
)


def _serve(seed=7, **kwargs):
    return run_service(
        BoundedChangePopulation(PARAMS.d, PARAMS.k, exact_k=True),
        PARAMS,
        seed,
        traffic="uniform",
        block_rows=BLOCK_ROWS,
        **kwargs,
    )


@functools.lru_cache(maxsize=8)
def _baseline(seed=7):
    return _serve(seed=seed)


def _assert_bit_identical(result, reference) -> None:
    assert np.array_equal(result.estimates, reference.estimates)
    assert np.array_equal(result.true_counts, reference.true_counts)
    assert result.stats == reference.stats


class TestChaosBitIdentity:
    def test_full_fault_coverage_recovers_bit_identically(self):
        result = _serve(faults=ALWAYS_FAULT)
        _assert_bit_identical(result, _baseline())
        assert not result.degraded
        report = result.fault_report
        assert report is not None
        assert report["lost_units"] == []
        faults = (
            report["crashes"]
            + report["hangs"]
            + report["corrupt_payloads"]
        )
        assert faults == result.blocks == 4  # every block faulted once
        assert report["backoff_seconds"] > 0.0  # simulated, never slept

    @pytest.mark.parametrize("preset", ["crash", "hang", "corrupt", "chaos"])
    def test_every_preset_recovers_bit_identically(self, preset):
        _assert_bit_identical(_serve(faults=preset), _baseline())

    def test_chaos_is_bit_identical_across_worker_counts(self):
        for workers in (2, 4):
            result = _serve(faults=ALWAYS_FAULT, workers=workers)
            _assert_bit_identical(result, _baseline())
            assert not result.degraded

    def test_retry_without_faults_changes_nothing(self):
        result = _serve(retry=RetryPolicy(max_attempts=5))
        _assert_bit_identical(result, _baseline())
        assert result.fault_report is not None
        assert result.fault_report["retries"] == 0

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_chaos_bit_identity_holds_at_any_seed(self, seed):
        _assert_bit_identical(
            _serve(seed=seed, faults=ALWAYS_FAULT), _baseline(seed)
        )


class TestGracefulDegradation:
    def test_lost_block_degrades_instead_of_failing(self):
        result = _serve(faults="lost-shard")
        baseline = _baseline()
        assert result.degraded
        assert result.lost_blocks  # seed 7 loses at least one block
        assert result.fault_report["lost_units"] == list(result.lost_blocks)
        # Truth is recomputed coordinator-side: still exact.
        assert np.array_equal(result.true_counts, baseline.true_counts)
        stats = result.stats
        assert stats.lost_blocks == len(result.lost_blocks)
        assert stats.lost_users == BLOCK_ROWS * len(result.lost_blocks)
        assert stats.total_users == PARAMS.n
        assert stats.effective_drop_rate == pytest.approx(
            stats.lost_users / PARAMS.n
        )

    def test_degraded_error_stays_inside_the_fault_adjusted_radius(self):
        result = _serve(faults="lost-shard")
        base, _beta = protocol_radius("future_rand", PARAMS, result.c_gap)
        widened = fault_adjusted_radius(
            base,
            PARAMS,
            drop_rate=result.stats.effective_drop_rate,
            duplicate_rate=result.stats.effective_duplicate_rate,
        )
        errors = np.abs(result.estimates - result.true_counts)
        assert widened > base
        assert errors.max() <= widened

    def test_losing_every_block_still_serves(self):
        result = _serve(
            faults=FaultModel(name="doom", crash_rate=1.0, permanent=True),
            retry=RetryPolicy(max_attempts=1),
        )
        assert result.degraded
        assert result.lost_blocks == tuple(range(result.blocks))
        assert result.stats.lost_users == PARAMS.n
        assert result.stats.effective_drop_rate == 1.0
        assert result.estimates.shape == (PARAMS.d,)
        assert np.array_equal(
            result.true_counts, _baseline().true_counts
        )


def _journal_lines(journal: ServiceJournal) -> list[str]:
    return journal.path.read_text(encoding="utf-8").splitlines()


def _truncated(root, lines, cut: int) -> ServiceJournal:
    """A journal holding the first ``cut`` lines plus a torn tail."""
    journal = ServiceJournal(root)
    journal.root.mkdir(parents=True, exist_ok=True)
    kept = "\n".join(lines[:cut]) + "\n" if cut else ""
    journal.path.write_text(
        kept + '{"kind": "period", "body": {"t": 99, "esti',
        encoding="utf-8",
    )
    return journal


class TestJournalRecovery:
    def test_fresh_run_writes_config_periods_and_snapshots(self, tmp_path):
        journal = ServiceJournal(tmp_path / "j")
        result = _serve(journal=journal, snapshot_every=8)
        assert result.resumed_from == 0
        kinds = [record.kind for record in journal.records()]
        assert kinds[0] == "config"
        assert kinds.count("period") == PARAMS.d
        # One snapshot every 8 closed periods, none after the final period.
        assert kinds.count("snapshot") == 3
        _assert_bit_identical(result, _baseline())

    def test_existing_journal_is_refused_without_resume(self, tmp_path):
        _serve(journal=tmp_path / "j", snapshot_every=8)
        with pytest.raises(JournalError, match="resume=True"):
            _serve(journal=tmp_path / "j")

    def test_resume_of_a_complete_journal_replays_bit_identically(
        self, tmp_path
    ):
        _serve(journal=tmp_path / "j", snapshot_every=8)
        resumed = _serve(journal=tmp_path / "j", resume=True, snapshot_every=8)
        _assert_bit_identical(resumed, _baseline())
        assert resumed.resumed_from == 24  # the latest snapshot
        assert resumed.stats == _baseline().stats

    def test_config_mismatch_is_refused(self, tmp_path):
        _serve(journal=tmp_path / "j", snapshot_every=8)
        with pytest.raises(JournalError, match="different run configuration"):
            _serve(seed=8, journal=tmp_path / "j", resume=True)

    def test_divergent_replay_is_detected(self, tmp_path):
        journal = ServiceJournal(tmp_path / "j")
        _serve(journal=journal, snapshot_every=8)
        lines = _journal_lines(journal)
        # Tamper the final period's estimate *with a valid checksum*: the
        # byte-level layer passes, the replay verification must catch it.
        record = json.loads(lines[-1])
        assert record["kind"] == "period"
        record["body"]["estimate"] += 1.0
        record["checksum"] = _record_checksum(record["kind"], record["body"])
        lines[-1] = canonical_json(record)
        journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalError, match="resume diverged at period"):
            _serve(journal=journal, resume=True, snapshot_every=8)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_kill_at_any_journal_point_resumes_bit_identically(
        self, tmp_path_factory, data
    ):
        """The satellite property: truncate the journal anywhere, resume."""
        reference = ServiceJournal(tmp_path_factory.mktemp("ref") / "j")
        baseline = _serve(journal=reference, snapshot_every=8)
        lines = _journal_lines(reference)
        cut = data.draw(st.integers(min_value=1, max_value=len(lines)))
        journal = _truncated(
            tmp_path_factory.mktemp("cut") / "j", lines, cut
        )
        resumed = _serve(journal=journal, resume=True, snapshot_every=8)
        _assert_bit_identical(resumed, baseline)
        assert resumed.stats == baseline.stats
        # The resumed journal must itself be complete and recoverable.
        again = _serve(journal=journal, resume=True, snapshot_every=8)
        _assert_bit_identical(again, baseline)

    def test_resume_under_chaos_is_still_bit_identical(self, tmp_path):
        journal = ServiceJournal(tmp_path / "j")
        _serve(faults=ALWAYS_FAULT, journal=journal, snapshot_every=8)
        lines = _journal_lines(journal)
        truncated = _truncated(tmp_path / "cut", lines, len(lines) // 2)
        resumed = _serve(
            faults=ALWAYS_FAULT,
            journal=truncated,
            resume=True,
            snapshot_every=8,
        )
        _assert_bit_identical(resumed, _baseline())

    def test_snapshot_every_must_be_positive(self):
        with pytest.raises(ValueError, match="snapshot_every"):
            _serve(snapshot_every=0)

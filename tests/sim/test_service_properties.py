"""Property tests: admissible delivery never changes what the tree says.

The service's correctness claim is order-independence — folding the same
aggregate multiset through any admissible interleaving (shuffled fold
order, early clock-skewed submission, deduplicated retransmits) releases
bit-identical estimates.  All totals are sums of ±1 reports, so every
intermediate value is exactly representable and equality is exact.
"""

from __future__ import annotations

import asyncio

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.server import Server
from repro.sim.service import AggregateMessage, IngestionService

D = 8
C_GAP = 0.5


@st.composite
def node_aggregate(draw):
    """One feasible aggregate: ±1 reports pin total to count's parity."""
    order = draw(st.integers(0, 3))
    index = draw(st.integers(1, D >> order))
    count = draw(st.integers(1, 5))
    positives = draw(st.integers(0, count))
    return (order, index, 2 * positives - count, count)


def aggregates(max_size: int = 24):
    return st.lists(node_aggregate(), min_size=1, max_size=max_size)


def _fold(items) -> np.ndarray:
    server = Server(D, C_GAP)
    server.advance_to(D)
    for order, index, total, count in items:
        server.receive_aggregate(order, index, total, count)
    return server.all_estimates()


def _messages(items) -> list[AggregateMessage]:
    return [
        AggregateMessage(
            message_id=(position, order, index),
            order=order,
            index=index,
            total=float(total),
            count=count,
            emitted_at=index << order,
        )
        for position, (order, index, total, count) in enumerate(items)
    ]


def _serve(messages, submit_at) -> np.ndarray:
    """Drive the service one period at a time with an explicit arrival plan."""

    async def drive() -> np.ndarray:
        service = IngestionService(D, C_GAP)
        try:
            for t in range(1, D + 1):
                await service.open_period(t)
                for message in messages:
                    if submit_at[(message.message_id, message.copy)] == t:
                        await service.submit(message)
                await service.close_period(t)
        finally:
            await service.shutdown()
        return np.asarray(service.released, dtype=np.float64)

    return asyncio.run(drive())


def _on_time(messages) -> dict:
    return {(m.message_id, m.copy): m.emitted_at for m in messages}


@settings(max_examples=40, deadline=None)
@given(data=st.data(), items=aggregates())
def test_fold_order_never_changes_estimates(data, items):
    """The Server's aggregate fold is permutation-invariant."""
    shuffled = data.draw(st.permutations(items))
    assert np.array_equal(_fold(items), _fold(shuffled))


@settings(max_examples=25, deadline=None)
@given(data=st.data(), items=aggregates(max_size=16))
def test_early_submission_and_shuffling_are_invisible(data, items):
    """Any clock-skewed (early) arrival plan releases identical estimates.

    Each message is submitted at a drawn period in ``[1, emitted_at]`` — the
    service buffers it until its interval closes — and the per-period
    delivery order is shuffled.  The released estimates must match on-time,
    in-order delivery bit for bit.
    """
    messages = _messages(items)
    canonical = _serve(messages, _on_time(messages))
    submit_at = {
        (m.message_id, m.copy): data.draw(st.integers(1, m.emitted_at))
        for m in messages
    }
    shuffled = data.draw(st.permutations(messages))
    assert np.array_equal(canonical, _serve(shuffled, submit_at))


@settings(max_examples=25, deadline=None)
@given(data=st.data(), items=aggregates(max_size=12))
def test_deduplicated_retransmits_are_invisible(data, items):
    """A retransmit copy of every message changes nothing with dedup on."""
    messages = _messages(items)
    canonical = _serve(messages, _on_time(messages))
    doubled = messages + [
        AggregateMessage(
            message_id=m.message_id,
            order=m.order,
            index=m.index,
            total=m.total,
            count=m.count,
            emitted_at=m.emitted_at,
            copy=1,
        )
        for m in messages
    ]
    submit_at = _on_time(messages)
    for m in messages:
        # The copy lands anywhere from its emission to the horizon.
        submit_at[(m.message_id, 1)] = data.draw(st.integers(m.emitted_at, D))
    assert np.array_equal(canonical, _serve(doubled, submit_at))


@settings(max_examples=25, deadline=None)
@given(data=st.data(), items=aggregates(max_size=16))
def test_service_matches_direct_server_fold(data, items):
    """The asyncio front end is a delivery layer, not a second estimator."""
    messages = _messages(items)
    submit_at = {
        (m.message_id, m.copy): data.draw(st.integers(1, m.emitted_at))
        for m in messages
    }
    released = _serve(messages, submit_at)
    assert np.array_equal(released, _fold(items))

"""Unit tests for the memory-bounded chunked pipeline's plumbing.

Covers the accumulator's stream-validation errors, the chunked batch engine
(snapshots, fault injection, aggregate server ingestion), the
``run_trials``/``sweep`` ``chunk_size`` knob, and
:meth:`Server.receive_aggregate`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.core.server import Server
from repro.sim.batch_engine import BatchSimulationEngine, run_batch_engine
from repro.sim.chunked import (
    ChunkedTreeAccumulator,
    run_batch_chunked,
    run_chunked_population,
)
from repro.sim.runner import run_trials, sweep
from repro.workloads.generators import BoundedChangePopulation

_PARAMS = ProtocolParams(n=200, d=16, k=3, epsilon=1.0)


@pytest.fixture
def states() -> np.ndarray:
    population = BoundedChangePopulation(_PARAMS.d, _PARAMS.k, start_prob=0.2)
    return population.sample(_PARAMS.n, np.random.default_rng(0))


class TestAccumulatorStreamValidation:
    def test_short_stream_is_an_error(self, states):
        accumulator = ChunkedTreeAccumulator(_PARAMS, 0)
        accumulator.add(states[:150])
        with pytest.raises(ValueError, match="150 users in total"):
            accumulator.finalize()

    def test_overlong_stream_fails_fast(self, states):
        accumulator = ChunkedTreeAccumulator(_PARAMS, 0)
        accumulator.add(states)
        with pytest.raises(ValueError, match="more than the declared"):
            accumulator.add(states[:1])

    def test_invalid_chunk_fails_on_entry(self, states):
        accumulator = ChunkedTreeAccumulator(_PARAMS, 0)
        bad = states[:10].copy()
        bad[0, 0] = 2
        with pytest.raises(ValueError, match="0 or 1"):
            accumulator.add(bad)
        over_budget = np.tile(
            np.arange(_PARAMS.d, dtype=np.int8) % 2, (4, 1)
        )
        with pytest.raises(ValueError, match="exceeding k"):
            accumulator.add(over_budget)

    def test_wrong_width_chunk_is_rejected(self):
        accumulator = ChunkedTreeAccumulator(_PARAMS, 0)
        with pytest.raises(ValueError, match="disagrees with params"):
            accumulator.add(np.zeros((5, 8), dtype=np.int8))

    def test_cannot_add_after_finalize(self, states):
        accumulator = ChunkedTreeAccumulator(_PARAMS, 0)
        accumulator.add(states)
        accumulator.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            accumulator.add(states[:1])

    def test_finalize_is_idempotent(self, states):
        accumulator = ChunkedTreeAccumulator(_PARAMS, 0)
        accumulator.add(states)
        first = accumulator.finalize()
        second = accumulator.finalize()
        np.testing.assert_array_equal(first.true_counts, second.true_counts)

    def test_empty_chunks_are_harmless(self, states):
        accumulator = ChunkedTreeAccumulator(_PARAMS, 0)
        accumulator.add(states[:0])
        accumulator.add(states)
        reports = accumulator.finalize()
        assert int(reports.group_sizes.sum()) == _PARAMS.n

    def test_rejects_bad_drop_rate(self):
        with pytest.raises(ValueError, match="report_drop_rate"):
            ChunkedTreeAccumulator(_PARAMS, 0, report_drop_rate=1.0)

    def test_rejects_bad_chunk_size(self, states):
        with pytest.raises(ValueError, match="chunk_size"):
            run_batch_chunked(states, _PARAMS, 0, chunk_size=0)


class TestChunkedEngine:
    def test_snapshot_stream_matches_contract(self, states):
        snapshots = []
        engine = BatchSimulationEngine(
            _PARAMS, rng=np.random.default_rng(1), chunk_size=64
        )
        result = engine.run(states, snapshots.append)
        assert [snap.t for snap in snapshots] == list(range(1, _PARAMS.d + 1))
        true = states.sum(axis=0)
        assert [snap.true_count for snap in snapshots] == true.tolist()
        np.testing.assert_array_equal(
            result.estimates, [snap.estimate for snap in snapshots]
        )
        # No drops: period t delivers exactly the emitting groups (orders h
        # with 2^h | t), and the horizon-closing period delivers everyone.
        group_sizes = np.bincount(result.orders, minlength=_PARAMS.d.bit_length())
        for snap in snapshots:
            expected = sum(
                int(group_sizes[order])
                for order in range(_PARAMS.d.bit_length())
                if snap.t % (1 << order) == 0
            )
            assert snap.reports_this_period == expected
        assert snapshots[-1].reports_this_period == _PARAMS.n
        assert result.orders.shape == (_PARAMS.n,)

    def test_chunk_size_invariance(self, states):
        reference = BatchSimulationEngine(
            _PARAMS, rng=np.random.default_rng(5), chunk_size=200
        ).run(states)
        for chunk_size in (1, 17, 999):
            other = BatchSimulationEngine(
                _PARAMS, rng=np.random.default_rng(5), chunk_size=chunk_size
            ).run(states)
            np.testing.assert_array_equal(reference.estimates, other.estimates)

    def test_drop_rate_thins_reports(self, states):
        snapshots = []
        engine = BatchSimulationEngine(
            _PARAMS,
            rng=np.random.default_rng(2),
            chunk_size=64,
            report_drop_rate=0.5,
        )
        result = engine.run(states, snapshots.append)
        delivered = sum(snap.reports_this_period for snap in snapshots)
        # Without drops each user of order h reports d / 2^h times.
        group_sizes = np.bincount(result.orders, minlength=_PARAMS.d.bit_length())
        offered = sum(
            int(group_sizes[order]) * (_PARAMS.d >> order)
            for order in range(_PARAMS.d.bit_length())
        )
        assert 0 < delivered < offered
        assert abs(delivered - offered / 2) < 0.2 * offered / 2

    def test_accepts_chunk_iterables_without_chunk_size(self, states):
        chunks = (states[start : start + 37] for start in range(0, _PARAMS.n, 37))
        result = run_batch_engine(chunks, _PARAMS, np.random.default_rng(3))
        assert result.estimates.shape == (_PARAMS.d,)

    def test_estimates_track_truth(self, states):
        from repro.analysis.bounds import hoeffding_radius

        result = BatchSimulationEngine(
            _PARAMS, rng=np.random.default_rng(4), chunk_size=50
        ).run(states)
        # The paper's Eq. 13 high-probability radius — the principled sanity
        # envelope (the bit-identity tests carry the exactness burden).
        radius = hoeffding_radius(_PARAMS, result.c_gap, _PARAMS.beta / _PARAMS.d)
        assert np.abs(result.estimates - result.true_counts).max() < radius

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            BatchSimulationEngine(_PARAMS, chunk_size=0)


class TestRunnerChunkSize:
    def test_run_trials_chunked_is_deterministic(self, states):
        first = run_trials(None, states, _PARAMS, trials=2, seed=3, chunk_size=64)
        second = run_trials(None, states, _PARAMS, trials=2, seed=3, chunk_size=64)
        assert first == second

    def test_chunked_protocol_instance_runs(self, states):
        statistics = run_trials(
            "future_rand", states, _PARAMS, trials=2, seed=3, chunk_size=64
        )
        assert statistics.trials == 2

    def test_non_chunkable_protocol_is_rejected(self, states):
        with pytest.raises(ValueError, match="does not support chunk_size"):
            run_trials(
                "memoization", states, _PARAMS, trials=1, seed=0, chunk_size=64
            )
        with pytest.raises(ValueError, match="does not support chunk_size"):
            sweep("erlingsson", _PARAMS, "k", [2], trials=1, seed=0, chunk_size=8)

    def test_rejects_bad_chunk_size(self, states):
        with pytest.raises(ValueError, match="chunk_size"):
            run_trials(None, states, _PARAMS, trials=1, seed=0, chunk_size=0)

    def test_sweep_chunked_produces_a_full_table(self):
        params = ProtocolParams(n=120, d=8, k=2, epsilon=1.0)
        table = sweep(
            ["future_rand", "bun_composed"],
            params,
            "k",
            [1, 2],
            trials=1,
            seed=0,
            chunk_size=32,
        )
        assert len(table.rows) == 4


class TestReceiveAggregate:
    def test_matches_receive_batch(self):
        bits = np.array([1, -1, 1, 1, -1, 1], dtype=np.int8)
        batch_server = Server(8, 0.5)
        batch_server.advance_to(2)
        batch_server.receive_batch(1, 1, bits)
        aggregate_server = Server(8, 0.5)
        aggregate_server.advance_to(2)
        returned = aggregate_server.receive_aggregate(
            1, 1, float(bits.sum()), bits.size
        )
        assert returned == bits.size
        assert aggregate_server.reports_received == batch_server.reports_received
        assert aggregate_server.estimate(2) == batch_server.estimate(2)

    def test_rejects_infeasible_totals(self):
        server = Server(8, 0.5)
        server.advance_to(1)
        with pytest.raises(ValueError, match="not a feasible sum"):
            server.receive_aggregate(0, 1, 7.0, 5)  # |total| > count
        with pytest.raises(ValueError, match="not a feasible sum"):
            server.receive_aggregate(0, 1, 2.0, 5)  # parity mismatch
        with pytest.raises(ValueError, match="count"):
            server.receive_aggregate(0, 1, 0.0, -1)

    def test_respects_the_online_clock(self):
        server = Server(8, 0.5)
        server.advance_to(1)
        with pytest.raises(ValueError, match="advance_to"):
            server.receive_aggregate(2, 1, 0.0, 2)

    def test_zero_count_is_a_noop(self):
        server = Server(8, 0.5)
        server.advance_to(1)
        assert server.receive_aggregate(0, 1, 0.0, 0) == 0
        assert server.reports_received == 0


class TestRunChunkedPopulation:
    def test_end_to_end_reproducible(self):
        population = BoundedChangePopulation(16, 3)
        params = ProtocolParams(n=300, d=16, k=3, epsilon=1.0)
        first = run_chunked_population(population, params, 9, chunk_size=64)
        second = run_chunked_population(population, params, 9, chunk_size=64)
        np.testing.assert_array_equal(first.estimates, second.estimates)
        np.testing.assert_array_equal(first.true_counts, second.true_counts)

    def test_chunk_size_does_not_change_the_run(self):
        population = BoundedChangePopulation(16, 2, start_prob=0.3)
        params = ProtocolParams(n=150, d=16, k=2, epsilon=1.0)
        reference = run_chunked_population(
            population, params, 4, chunk_size=150, block_rows=40
        )
        varied = run_chunked_population(
            population, params, 4, chunk_size=7, block_rows=40
        )
        np.testing.assert_array_equal(reference.estimates, varied.estimates)

    def test_rejects_bad_chunk_size(self):
        population = BoundedChangePopulation(16, 2)
        params = ProtocolParams(n=10, d=16, k=2, epsilon=1.0)
        with pytest.raises(ValueError, match="chunk_size"):
            run_chunked_population(population, params, 0, chunk_size=0)


class TestSeedContractRobustness:
    """Review regressions: seeding must not depend on an object's history."""

    def test_protocol_block_seeds_ignore_prior_spawns(self, states):
        from repro.sim.chunked import collect_tree_reports_chunked, protocol_block_seeds

        node = np.random.SeedSequence(21)
        node.spawn(3)  # a caller that already used this node elsewhere
        used = collect_tree_reports_chunked(states, _PARAMS, node, chunk_size=64)
        fresh = collect_tree_reports_chunked(
            states, _PARAMS, np.random.SeedSequence(21), chunk_size=64
        )
        np.testing.assert_array_equal(used.orders, fresh.orders)
        for sums_a, sums_b in zip(used.node_sums, fresh.node_sums, strict=True):
            np.testing.assert_array_equal(sums_a, sums_b)
        # And the advertised reproduce-any-block helper matches the run.
        spent = np.random.SeedSequence(21)
        spent.spawn(5)
        assert [child.spawn_key for child in protocol_block_seeds(spent, _PARAMS.n)] == [
            child.spawn_key
            for child in protocol_block_seeds(np.random.SeedSequence(21), _PARAMS.n)
        ]

    def test_sample_chunks_ignore_prior_spawns(self):
        population = BoundedChangePopulation(16, 2)
        node = np.random.SeedSequence(8)
        node.spawn(4)
        used = np.concatenate(list(population.sample_chunks(50, 9, node)))
        fresh = np.concatenate(
            list(population.sample_chunks(50, 9, np.random.SeedSequence(8)))
        )
        np.testing.assert_array_equal(used, fresh)


class TestChunkedArtifactKeys:
    def test_resume_reuses_shards_across_chunk_sizes(self, states, tmp_path):
        """Chunked output is chunk-size-invariant, so the store key must be too."""
        from repro.sim.store import ResultStore

        store = ResultStore(tmp_path)
        first = run_trials(
            None, states, _PARAMS, trials=2, seed=1, store=store, chunk_size=64
        )
        count = store.shard_count()
        second = run_trials(
            None, states, _PARAMS, trials=2, seed=1, store=store, chunk_size=17
        )
        assert store.shard_count() == count  # reloaded, not recomputed
        assert first == second

    def test_chunked_and_monolithic_keys_stay_distinct(self, states, tmp_path):
        from repro.sim.store import ResultStore

        store = ResultStore(tmp_path)
        monolithic = run_trials(None, states, _PARAMS, trials=2, seed=1, store=store)
        count = store.shard_count()
        chunked = run_trials(
            None, states, _PARAMS, trials=2, seed=1, store=store, chunk_size=64
        )
        assert store.shard_count() == 2 * count  # different randomness stream
        assert monolithic != chunked

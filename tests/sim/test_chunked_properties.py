"""Property tests: chunked execution is bit-identical to monolithic ``run_batch``.

The out-of-core contract (mirroring the sharded-sweep determinism contract):
chunking changes *where* a user's reports are computed, never *what* they
are.  With the whole population inside one seed block, the chunked
accumulator must reproduce the monolithic driver bit for bit — node sums,
orders, group sizes, true counts and prefix estimates — for *any* chunk size
(1, primes, larger than n), any d/k, and any order-weight ablation.  With
multiple blocks, any two chunk sizes must agree with each other.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ProtocolParams
from repro.core.vectorized import collect_tree_reports, run_batch
from repro.sim.chunked import (
    collect_tree_reports_chunked,
    protocol_block_seeds,
    run_batch_chunked,
)
from repro.workloads.generators import BoundedChangePopulation


def _workload(n: int, d: int, k: int, seed: int) -> np.ndarray:
    population = BoundedChangePopulation(d, k, start_prob=0.25)
    return population.sample(n, np.random.default_rng(seed))


@settings(max_examples=30, deadline=None)
@given(
    log_d=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=1, max_value=3),
    n=st.integers(min_value=1, max_value=50),
    workload_seed=st.integers(min_value=0, max_value=2**32 - 1),
    protocol_seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk_size=st.one_of(
        st.just(1), st.sampled_from([3, 7, 13]), st.integers(min_value=51, max_value=70)
    ),
)
def test_chunked_equals_monolithic_run_batch(
    log_d, k, n, workload_seed, protocol_seed, chunk_size
):
    d = 1 << log_d
    k = min(k, d)
    params = ProtocolParams(n=n, d=d, k=k, epsilon=1.0)
    states = _workload(n, d, k, workload_seed)

    # Single seed block (block_rows >= n): the chunked path must replay the
    # monolithic driver's exact randomness, drawn from the first spawn child.
    (child,) = protocol_block_seeds(protocol_seed, n, block_rows=128)
    monolithic = run_batch(states, params, np.random.default_rng(child))
    chunked = run_batch_chunked(
        states, params, protocol_seed, chunk_size=chunk_size, block_rows=128
    )
    np.testing.assert_array_equal(monolithic.estimates, chunked.estimates)
    np.testing.assert_array_equal(monolithic.true_counts, chunked.true_counts)
    np.testing.assert_array_equal(monolithic.orders, chunked.orders)
    assert monolithic.c_gap == chunked.c_gap
    assert monolithic.family_name == chunked.family_name


@settings(max_examples=20, deadline=None)
@given(
    log_d=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=1, max_value=3),
    n=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk_a=st.integers(min_value=1, max_value=70),
    chunk_b=st.integers(min_value=1, max_value=70),
    block_rows=st.sampled_from([5, 16, 23]),
)
def test_chunk_size_is_invariant_across_blocks(
    log_d, k, n, seed, chunk_a, chunk_b, block_rows
):
    """Multi-block streams: any two chunk sizes produce identical trees."""
    d = 1 << log_d
    k = min(k, d)
    params = ProtocolParams(n=n, d=d, k=k, epsilon=1.0)
    states = _workload(n, d, k, seed)
    first = collect_tree_reports_chunked(
        states, params, seed, chunk_size=chunk_a, block_rows=block_rows
    )
    second = collect_tree_reports_chunked(
        states, params, seed, chunk_size=chunk_b, block_rows=block_rows
    )
    for sums_a, sums_b in zip(first.node_sums, second.node_sums, strict=True):
        np.testing.assert_array_equal(sums_a, sums_b)
    np.testing.assert_array_equal(first.orders, second.orders)
    np.testing.assert_array_equal(first.group_sizes, second.group_sizes)
    np.testing.assert_array_equal(first.true_counts, second.true_counts)
    np.testing.assert_array_equal(
        first.prefix_estimates(), second.prefix_estimates()
    )


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk_size=st.sampled_from([1, 7, 64]),
)
def test_order_weight_ablation_matches_monolithic(n, seed, chunk_size):
    """The order-weights knob flows through the chunked path unchanged."""
    d, k = 8, 2
    params = ProtocolParams(n=n, d=d, k=k, epsilon=1.0)
    states = _workload(n, d, k, seed)
    weights = [4.0, 2.0, 1.0, 1.0]
    (child,) = protocol_block_seeds(seed, n, block_rows=64)
    monolithic = collect_tree_reports(
        states, params, np.random.default_rng(child), order_weights=weights
    )
    chunked = collect_tree_reports_chunked(
        states,
        params,
        seed,
        chunk_size=chunk_size,
        order_weights=weights,
        block_rows=64,
    )
    np.testing.assert_array_equal(
        monolithic.order_probabilities, chunked.order_probabilities
    )
    np.testing.assert_array_equal(monolithic.node_scales, chunked.node_scales)
    for sums_a, sums_b in zip(monolithic.node_sums, chunked.node_sums, strict=True):
        np.testing.assert_array_equal(sums_a, sums_b)


@settings(max_examples=25, deadline=None)
@given(
    mode=st.sampled_from(["uniform", "early", "late", "bursty"]),
    n=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk_size=st.sampled_from([1, 7, 41, 100]),
)
def test_generator_output_concatenates_to_monolithic_sample(
    mode, n, seed, chunk_size
):
    """Chunked generator output == the monolithic draw, every generator mode."""
    d, k = 16, 3
    population = BoundedChangePopulation(d, k, mode=mode, start_prob=0.2)
    stream = np.concatenate(
        list(population.sample_chunks(n, chunk_size, seed, block_rows=64))
    )
    child = np.random.SeedSequence(seed).spawn(1)[0]
    monolithic = population.sample(n, np.random.default_rng(child))
    np.testing.assert_array_equal(stream, monolithic)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk_size=st.sampled_from([1, 11, 60]),
    block_rows=st.sampled_from([8, 64]),
)
def test_generator_stream_equals_materialized_matrix(
    n, seed, chunk_size, block_rows
):
    """Feeding ``sample_chunks`` output equals materializing it first."""
    d, k = 16, 3
    params = ProtocolParams(n=n, d=d, k=k, epsilon=1.0)
    population = BoundedChangePopulation(d, k, start_prob=0.2)
    materialized = np.concatenate(
        list(population.sample_chunks(n, n, seed, block_rows=block_rows))
    )
    streamed = run_batch_chunked(
        population.sample_chunks(n, chunk_size, seed, block_rows=block_rows),
        params,
        seed + 1,
        block_rows=block_rows,
    )
    direct = run_batch_chunked(
        materialized, params, seed + 1, chunk_size=chunk_size, block_rows=block_rows
    )
    np.testing.assert_array_equal(streamed.estimates, direct.estimates)
    np.testing.assert_array_equal(streamed.true_counts, direct.true_counts)

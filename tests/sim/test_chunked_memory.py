"""Memory regression: the chunked pipeline's peak allocation is O(chunk).

Self-calibrating ``tracemalloc`` budget: the peak incremental allocation of a
full n=200,000, d=512 chunked run must stay below 3x the peak of processing a
*single* chunk (generation + randomization + accumulation), and far below one
monolithic ``(n, d)`` matrix.  If anyone reintroduces a full-population
materialization — states, reports, scores — the full-run peak scales with n
and both bounds blow up.

Timing/speedup assertions stay gated on ``default_workers()`` elsewhere (this
container exposes 1 CPU); memory bounds hold on any machine, so this test is
unconditional (just ``slow``).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.sim.chunked import run_chunked_population
from repro.workloads.generators import BoundedChangePopulation

_D = 512
_K = 4
_CHUNK = 4096
_N_FULL = 200_000


def _peak_of_run(n: int) -> tuple[float, np.ndarray]:
    """Peak incremental traced allocation of a full chunked run at size n."""
    params = ProtocolParams(n=n, d=_D, k=_K, epsilon=1.0)
    population = BoundedChangePopulation(_D, _K, start_prob=0.2)
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        before, _ = tracemalloc.get_traced_memory()
        result = run_chunked_population(
            population, params, 1234, chunk_size=_CHUNK, block_rows=_CHUNK
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return float(peak - before), result.estimates


@pytest.mark.slow
def test_chunked_run_peak_memory_is_bounded_by_the_chunk():
    single_chunk_peak, _ = _peak_of_run(_CHUNK)
    full_peak, estimates = _peak_of_run(_N_FULL)
    assert estimates.shape == (_D,)

    # The full run touches 49x more users than one chunk; its peak must not
    # scale with n.  3x one chunk's working set is the contract.
    assert full_peak < 3.0 * single_chunk_peak, (
        f"full-run peak {full_peak / 1e6:.1f} MB exceeds 3x the "
        f"single-chunk peak {single_chunk_peak / 1e6:.1f} MB"
    )
    # And in absolute terms: far below one monolithic (n, d) int8 matrix,
    # which is itself ~12x smaller than the float64 score/report transients
    # a monolithic run would allocate on top.
    monolithic_matrix_bytes = _N_FULL * _D
    assert full_peak < 0.5 * monolithic_matrix_bytes, (
        f"full-run peak {full_peak / 1e6:.1f} MB is not small against a "
        f"{monolithic_matrix_bytes / 1e6:.1f} MB monolithic matrix"
    )

"""Fault-injection layer: deterministic schedules, envelopes, supervision.

The contract under test is the one the chaos suite leans on: a fault
schedule is a pure function of ``(model, units, seed)``; payload corruption
never passes a checksum; and :func:`repro.faults.run_supervised` recovers
every transient failure with results bit-identical to an unsupervised run —
on both the serial and the process-pool path — while all backoff accrues on
a simulated clock, never the wallclock.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FAULT_KINDS,
    FAULT_MODELS,
    FaultModel,
    FaultSchedule,
    InjectedCrash,
    PayloadCorruptionError,
    RetryPolicy,
    ShardExecutionError,
    SimulatedClock,
    get_fault_model,
    plan_fault_schedule,
    run_supervised,
    seal,
    tamper,
    unseal,
)


def _square(item: int) -> int:
    """Module-level (pool-picklable) pure worker."""
    return item * item


def _stall(item: int) -> int:
    """A worker that genuinely hangs past any test deadline."""
    time.sleep(30.0)
    return item


def _boom(item: int) -> int:
    raise KeyError(f"application bug on {item}")


class TestFaultModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="crash_rate"):
            FaultModel(crash_rate=1.5)
        with pytest.raises(ValueError, match="sum to at most 1"):
            FaultModel(crash_rate=0.6, hang_rate=0.6)
        with pytest.raises(ValueError, match="failures"):
            FaultModel(failures=0)

    def test_presets_resolve_and_unknown_rejected(self):
        for name, model in FAULT_MODELS.items():
            assert get_fault_model(name) is model
        assert get_fault_model(FaultModel(crash_rate=0.1)).crash_rate == 0.1
        with pytest.raises(ValueError, match="unknown fault model"):
            get_fault_model("gremlins")

    def test_active_flag(self):
        assert not FAULT_MODELS["none"].active
        assert all(
            FAULT_MODELS[name].active for name in FAULT_MODELS if name != "none"
        )


class TestFaultSchedule:
    def test_schedule_is_a_pure_function_of_model_units_seed(self):
        for seed in (0, 7, 123):
            a = plan_fault_schedule("chaos", 40, seed)
            b = plan_fault_schedule("chaos", 40, seed)
            assert a == b
        assert plan_fault_schedule("chaos", 40, 0) != plan_fault_schedule(
            "chaos", 40, 1
        )

    def test_unit_rows_do_not_depend_on_earlier_units(self):
        # Two draws are always consumed per unit, so a prefix of a longer
        # schedule matches the shorter schedule row-for-row... it does not:
        # the draws are vectorized per-array, so extending units changes the
        # arrays.  What *is* guaranteed: same (model, units, seed) -> same
        # rows, and the empirical kind mix follows the rates.
        schedule = plan_fault_schedule("chaos", 2000, 3)
        kinds = [row[0] for row in schedule.rows if row]
        assert 0.25 < len(kinds) / 2000 < 0.45  # total_rate = 0.35
        assert set(kinds) <= set(FAULT_KINDS)

    def test_transient_kind_at_exhausts_after_failures(self):
        schedule = plan_fault_schedule(
            FaultModel(name="t", crash_rate=1.0, failures=2), 1, 0
        )
        assert schedule.kind_at(0, 0) == "crash"
        assert schedule.kind_at(0, 1) == "crash"
        assert schedule.kind_at(0, 2) is None

    def test_permanent_kind_never_exhausts(self):
        schedule = plan_fault_schedule(
            FaultModel(name="p", crash_rate=1.0, permanent=True), 1, 0
        )
        assert all(schedule.kind_at(0, attempt) for attempt in range(10))
        assert schedule.faulted_units == (0,)

    def test_none_model_schedules_nothing(self):
        schedule = plan_fault_schedule("none", 16, 5)
        assert schedule.faulted_units == ()
        assert schedule.injector(3, 0) is None


class TestEnvelopes:
    def test_seal_unseal_round_trip(self):
        payload = {"a": np.arange(4), "b": (1, "x")}
        out = unseal(seal(payload))
        assert out["b"] == (1, "x")
        assert np.array_equal(out["a"], np.arange(4))

    def test_tampered_payload_never_passes(self):
        envelope = tamper(seal([1, 2, 3]))
        with pytest.raises(PayloadCorruptionError, match="checksum"):
            unseal(envelope)


class TestSimulatedClock:
    def test_advance_accumulates_and_rejects_negative(self):
        clock = SimulatedClock()
        assert clock.now == 0.0
        clock.advance(0.5)
        clock.advance(1.0)
        assert clock.now == 1.5
        with pytest.raises(ValueError, match="advance"):
            clock.advance(-1.0)

    def test_retry_policy_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0)
        assert [policy.backoff(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout_seconds"):
            RetryPolicy(timeout_seconds=0.0)


def _crash_schedule(units: int, faulted, *, failures=1, permanent=False):
    """A hand-built schedule crashing exactly the given unit indices."""
    return FaultSchedule(
        model=FaultModel(name="pin", crash_rate=1.0, failures=failures,
                         permanent=permanent),
        rows=tuple(
            ("crash",) * failures if i in faulted else () for i in range(units)
        ),
        permanent=tuple(permanent and i in faulted for i in range(units)),
    )


class TestSupervisedSerial:
    def test_recovers_transient_faults_bit_identically(self):
        items = list(range(8))
        expected = [_square(i) for i in items]
        schedule = plan_fault_schedule("chaos", len(items), 11)
        results, report = run_supervised(_square, items, schedule=schedule)
        assert results == expected
        assert report.retries == report.faults_seen > 0
        assert report.lost_units == ()
        assert report.backoff_seconds > 0.0  # simulated, not slept

    def test_supervision_adds_no_wallclock_stalls(self):
        schedule = _crash_schedule(4, {0, 1, 2, 3}, failures=2)
        started = time.perf_counter()
        _, report = run_supervised(
            _square,
            list(range(4)),
            schedule=schedule,
            retry=RetryPolicy(backoff_base=1000.0),
        )
        assert time.perf_counter() - started < 5.0
        assert report.backoff_seconds == pytest.approx(4 * (1000.0 + 2000.0))

    def test_exhausted_unit_is_lost_to_the_callback(self):
        schedule = _crash_schedule(4, {2}, permanent=True)
        lost = []
        results, report = run_supervised(
            _square,
            list(range(4)),
            schedule=schedule,
            on_lost=lambda i, e: lost.append((i, type(e).__name__)),
        )
        assert results == [0, 1, None, 9]
        assert lost == [(2, "InjectedCrash")]
        assert report.lost_units == (2,)
        assert report.degraded

    def test_exhausted_unit_without_callback_names_its_coordinates(self):
        schedule = _crash_schedule(3, {1}, permanent=True)
        with pytest.raises(ShardExecutionError, match="unit 1") as info:
            run_supervised(_square, [0, 1, 2], schedule=schedule)
        assert isinstance(info.value.__cause__, InjectedCrash)

    def test_application_errors_are_not_retried(self):
        with pytest.raises(ShardExecutionError, match="non-retryable"):
            run_supervised(_boom, [0])

    def test_schedule_length_must_match_items(self):
        with pytest.raises(ValueError, match="schedule covers"):
            run_supervised(_square, [0, 1], schedule=_crash_schedule(3, set()))

    @settings(max_examples=20, deadline=None)
    @given(
        units=st.integers(min_value=1, max_value=12),
        data=st.data(),
    )
    def test_crash_at_any_unit_recovers_bit_identically(self, units, data):
        """The satellite property: a crash anywhere changes nothing."""
        faulted = data.draw(
            st.sets(st.integers(0, units - 1), min_size=1, max_size=units)
        )
        failures = data.draw(st.integers(1, 2))
        schedule = _crash_schedule(units, faulted, failures=failures)
        items = list(range(units))
        results, report = run_supervised(_square, items, schedule=schedule)
        assert results == [_square(i) for i in items]
        assert report.crashes == failures * len(faulted)
        assert report.lost_units == ()


class TestSupervisedPool:
    def test_hard_crashes_break_the_pool_and_still_recover(self):
        items = list(range(6))
        schedule = _crash_schedule(len(items), {1, 4})
        results, report = run_supervised(
            _square, items, workers=2, schedule=schedule
        )
        assert results == [_square(i) for i in items]
        assert report.crashes >= 2
        assert report.pool_respawns >= 1
        assert report.lost_units == ()

    def test_pool_matches_serial_results_under_chaos(self):
        items = list(range(8))
        schedule = plan_fault_schedule("chaos", len(items), 19)
        serial, _ = run_supervised(_square, items, schedule=schedule)
        pooled, _ = run_supervised(
            _square, items, workers=3, schedule=schedule
        )
        assert pooled == serial == [_square(i) for i in items]

    def test_permanent_hard_crash_degrades_instead_of_failing(self):
        schedule = _crash_schedule(4, {0}, permanent=True)
        lost = []
        results, report = run_supervised(
            _square,
            list(range(4)),
            workers=2,
            schedule=schedule,
            on_lost=lambda i, e: lost.append(i),
        )
        assert results[0] is None
        assert results[1:] == [1, 4, 9]
        assert lost == [0]
        assert report.degraded

    def test_deadline_overrun_is_a_timeout_and_respawns_the_pool(self):
        lost = []
        results, report = run_supervised(
            _stall,
            [0],
            workers=2,
            retry=RetryPolicy(max_attempts=1, timeout_seconds=0.2),
            on_lost=lambda i, e: lost.append(type(e).__name__),
        )
        assert results == [None]
        assert lost == ["ShardTimeoutError"]
        assert report.timeouts == 1
        assert report.pool_respawns == 1

"""End-to-end tests for the asyncio ingestion service.

The headline contracts under test:

* **Sharding** — ``run_service`` is bit-identical at any worker count
  (every stream hangs off one root ``SeedSequence`` spawn tree).
* **Traffic semantics** — clock skew buffers but never changes estimates,
  retransmits with deduplication on are invisible, deduplication off
  double-counts, drops lose reports; all of it lands in ``TrafficStats``.
* **Accuracy** — fault-free runs sit inside the protocol radius; faulty
  runs sit inside the fault-adjusted radius at the *observed* rates.
* **Mid-stream queries** — the explicit open-interval policy (raise vs
  clamp) and per-period callback snapshots that match the final estimates.
"""

from __future__ import annotations

import asyncio
import functools

import numpy as np
import pytest

from repro.analysis.conformance import fault_adjusted_radius, protocol_radius
from repro.core.params import ProtocolParams
from repro.sim.batch_engine import run_batch_engine
from repro.sim.runner import run_trials, sweep
from repro.sim.service import (
    AggregateMessage,
    IngestionService,
    OpenIntervalError,
    run_service,
)
from repro.workloads.generators import BoundedChangePopulation
from repro.workloads.scenarios import SCENARIOS
from repro.workloads.traffic import TrafficModel

PARAMS = ProtocolParams(n=2000, d=32, k=3, epsilon=1.0)
#: Small blocks so even the tiny test population shards into several
#: worker tasks (n=2000 / 512 -> 4 blocks).
BLOCK_ROWS = 512


def _population() -> BoundedChangePopulation:
    return BoundedChangePopulation(PARAMS.d, PARAMS.k, exact_k=True)


def _serve(traffic="uniform", *, seed=7, workers=1, **kwargs):
    return run_service(
        _population(),
        PARAMS,
        seed,
        traffic=traffic,
        workers=workers,
        block_rows=BLOCK_ROWS,
        **kwargs,
    )


class TestShardingContract:
    @pytest.mark.parametrize("traffic", ["uniform", "soak"])
    def test_bit_identical_across_worker_counts(self, traffic):
        baseline = _serve(traffic)
        for workers in (2, 4):
            result = _serve(traffic, workers=workers)
            assert np.array_equal(baseline.estimates, result.estimates), (
                f"workers={workers} diverged under {traffic!r} traffic"
            )
            assert np.array_equal(baseline.true_counts, result.true_counts)
            assert baseline.stats == result.stats

    def test_same_seed_same_run(self):
        first = _serve("soak")
        second = _serve("soak")
        assert np.array_equal(first.estimates, second.estimates)
        assert first.stats == second.stats

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            _serve(workers=0)

    def test_unknown_traffic_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic model"):
            _serve("smooth-sailing")


class TestTrafficSemantics:
    def test_fault_free_run_is_smooth(self):
        result = _serve("uniform")
        stats = result.stats
        assert stats.dropped_messages == 0
        assert stats.duplicate_messages == 0
        assert stats.skew_buffered == 0
        assert stats.delivered_reports == stats.total_reports
        assert stats.effective_drop_rate == 0.0
        assert stats.effective_duplicate_rate == 0.0

    def test_skew_buffers_arrivals_but_not_estimates(self):
        """A skewed clock changes *submission* periods, never fold periods."""
        smooth = _serve("uniform")
        skewed = _serve("skewed")
        assert skewed.stats.skew_buffered > 0
        assert np.array_equal(smooth.estimates, skewed.estimates)

    def test_retransmits_are_invisible_with_dedup_on(self):
        smooth = _serve("uniform")
        resent = _serve("retransmit")
        assert resent.stats.duplicates_discarded > 0
        assert resent.stats.duplicate_reports == 0
        assert resent.stats.effective_duplicate_rate == 0.0
        assert np.array_equal(smooth.estimates, resent.estimates)

    def test_retransmits_double_count_with_dedup_off(self):
        result = _serve("retransmit", reject_duplicates=False)
        stats = result.stats
        assert stats.duplicates_discarded == 0
        assert stats.duplicate_reports > 0
        # The preset resends 5% of messages; the observed report rate
        # should land in the same ballpark.
        assert 0.0 < stats.effective_duplicate_rate < 0.2

    def test_lossy_traffic_loses_reports(self):
        result = _serve("lossy")
        stats = result.stats
        assert stats.dropped_messages > 0
        assert stats.dropped_reports > 0
        assert stats.effective_drop_rate > 0.0
        assert stats.delivered_reports < stats.total_reports

    def test_bursts_queue_deeper_than_smooth_traffic(self):
        smooth = _serve("uniform")
        bursty = _serve("bursty")
        assert bursty.stats.peak_queue_depth >= smooth.stats.peak_queue_depth
        assert np.array_equal(smooth.estimates, bursty.estimates)


class TestAccuracy:
    def test_fault_free_within_protocol_radius(self):
        result = _serve("uniform")
        bound, _beta = protocol_radius("future_rand", PARAMS, result.c_gap)
        assert result.to_result().max_abs_error <= bound

    def test_soak_within_fault_adjusted_radius(self):
        result = _serve("soak")
        stats = result.stats
        bound, _beta = protocol_radius("future_rand", PARAMS, result.c_gap)
        adjusted = fault_adjusted_radius(
            bound,
            PARAMS,
            drop_rate=stats.effective_drop_rate,
            duplicate_rate=stats.effective_duplicate_rate,
        )
        assert result.to_result().max_abs_error <= adjusted


class TestMidStreamQueries:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="open_interval_policy"):
            IngestionService(8, 0.5, open_interval_policy="guess")

    def test_raise_policy_rejects_open_intervals(self):
        service = IngestionService(8, 0.5)
        with pytest.raises(OpenIntervalError, match="no period has closed"):
            service.estimate()
        with pytest.raises(OpenIntervalError, match="retry later"):
            service.estimate(1)

    def test_clamp_policy_needs_one_closed_period(self):
        service = IngestionService(8, 0.5, open_interval_policy="clamp")
        with pytest.raises(OpenIntervalError, match="nothing to clamp"):
            service.estimate(3)

    def test_clamp_policy_answers_from_latest_closed_period(self):
        async def drive(service: IngestionService) -> None:
            await service.open_period(1)
            await service.submit(
                AggregateMessage(
                    message_id=(0, 0, 1),
                    order=0,
                    index=1,
                    total=2.0,
                    count=4,
                    emitted_at=1,
                )
            )
            await service.close_period(1)
            await service.shutdown()

        service = IngestionService(8, 0.5, open_interval_policy="clamp")
        asyncio.run(drive(service))
        assert service.closed_period == 1
        # Period 5 has not closed; clamp answers with period 1's estimate.
        assert service.estimate(5) == service.estimate(1)
        assert service.range_estimate(1, 5) == service.range_estimate(1, 1)
        # Ranges entirely beyond the closed prefix still fail loudly.
        with pytest.raises(OpenIntervalError, match="beyond"):
            service.range_estimate(2, 5)

    def test_periods_close_in_order(self):
        async def skip_ahead(service: IngestionService) -> None:
            await service.open_period(1)
            try:
                await service.close_period(2)
            finally:
                await service.shutdown()

        service = IngestionService(8, 0.5)
        with pytest.raises(ValueError, match="periods close in order"):
            asyncio.run(skip_ahead(service))

    def test_callback_snapshots_match_final_estimates(self):
        snapshots = []
        result = _serve("soak", callback=snapshots.append)
        assert [snap.t for snap in snapshots] == list(range(1, PARAMS.d + 1))
        assert np.array_equal(
            np.array([snap.estimate for snap in snapshots]), result.estimates
        )
        assert np.array_equal(
            np.array([snap.true_count for snap in snapshots]),
            result.true_counts,
        )
        delivered = sum(snap.reports_this_period for snap in snapshots)
        assert delivered == result.stats.delivered_reports

    def test_throughput_accounting(self):
        result = _serve("uniform")
        assert result.elapsed_seconds > 0
        assert result.reports_per_second > 0
        assert result.blocks == 4  # n=2000 over block_rows=512


class TestScenarioIntegration:
    def test_flash_crowd_is_registered(self):
        assert "flash_crowd" in SCENARIOS

    def test_scenario_serve_routes_through_the_service(self):
        scenario = SCENARIOS["flash_crowd"](
            n=1500, d=32, rng=np.random.default_rng(3)
        )
        assert scenario.traffic is not None
        assert scenario.traffic.faulty
        result = scenario.serve(seed=11)
        assert result.estimates.shape == (32,)
        assert result.traffic == scenario.traffic
        # Override the scenario's traffic with a smooth model.
        smooth = scenario.serve(seed=11, traffic=TrafficModel(name="uniform"))
        assert smooth.stats.duplicate_messages == 0


class TestRunnerFailFast:
    def test_run_trials_rejects_duplicate_rate_with_chunk_size(self):
        runner = functools.partial(run_batch_engine, report_duplicate_rate=0.02)
        states = _population().sample(PARAMS.n, np.random.default_rng(0))
        with pytest.raises(ValueError, match="monolithic engine path"):
            run_trials(
                runner, states, PARAMS, trials=1, seed=0, chunk_size=64
            )

    def test_sweep_rejects_duplicate_rate_with_chunk_size(self):
        runner = functools.partial(run_batch_engine, report_duplicate_rate=0.02)
        with pytest.raises(ValueError, match="monolithic engine path"):
            sweep(
                runner,
                PARAMS,
                "epsilon",
                [1.0],
                trials=1,
                seed=0,
                chunk_size=64,
            )

"""Write-ahead journal durability: round trips, torn tails, corruption.

The recovery story rests on three behaviors: every appended record reads
back verified; the expected wreckage of a kill (a torn *final* line) is
dropped silently; and damage anywhere earlier is loud — an
``ArtifactCorruptedError``, never a silent recompute.
"""

from __future__ import annotations

import json

import pytest

from repro.sim.journal import JournalRecord, ServiceJournal
from repro.sim.store import ArtifactCorruptedError


@pytest.fixture
def journal(tmp_path):
    return ServiceJournal(tmp_path / "journal")


def test_missing_journal_reads_empty(journal):
    assert not journal.exists()
    assert journal.records() == []


def test_append_read_round_trip(journal):
    journal.append("config", {"schema": 1, "seed": "abc"})
    journal.append("period", {"t": 1, "estimate": 0.123456789012345678})
    journal.append("snapshot", {"t": 1, "released": [0.1]})
    assert journal.exists()
    records = journal.records()
    assert [r.kind for r in records] == ["config", "period", "snapshot"]
    assert records[0] == JournalRecord(
        kind="config", body={"schema": 1, "seed": "abc"}
    )
    # Floats travel through repr serialization: bit-identical round trip.
    assert records[1].body["estimate"] == 0.123456789012345678


def test_torn_final_line_is_dropped(journal):
    journal.append("config", {"schema": 1})
    journal.append("period", {"t": 1, "estimate": 2.0})
    with journal.path.open("a", encoding="utf-8") as handle:
        handle.write('{"kind": "period", "body": {"t": 2, "est')  # kill here
    records = journal.records()
    assert [r.kind for r in records] == ["config", "period"]
    assert records[-1].body["t"] == 1


def test_recover_truncates_the_torn_tail_before_new_appends(journal):
    journal.append("config", {"schema": 1})
    journal.append("period", {"t": 1, "estimate": 2.0})
    with journal.path.open("a", encoding="utf-8") as handle:
        handle.write('{"kind": "period", "body": {"t": 2, "est')  # kill here
    records = journal.recover()
    assert [r.kind for r in records] == ["config", "period"]
    # The wreckage is gone, so the resumed run can append safely: without
    # the truncation this append would leave mid-file corruption.
    journal.append("period", {"t": 2, "estimate": 3.0})
    assert [r.body.get("t") for r in journal.records()] == [None, 1, 2]


def test_recover_on_a_clean_or_missing_journal_is_a_no_op(journal):
    assert journal.recover() == []
    journal.append("config", {"schema": 1})
    before = journal.path.read_bytes()
    assert [r.kind for r in journal.recover()] == ["config"]
    assert journal.path.read_bytes() == before


def test_earlier_corruption_is_loud(journal):
    journal.append("config", {"schema": 1})
    journal.append("period", {"t": 1, "estimate": 2.0})
    journal.append("period", {"t": 2, "estimate": 3.0})
    lines = journal.path.read_text(encoding="utf-8").splitlines()
    lines[1] = lines[1].replace('"t":1', '"t":7')  # checksum now stale
    assert '"t":7' in lines[1]
    journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(ArtifactCorruptedError, match="record 2"):
        journal.records()


def test_tampered_body_fails_its_checksum(journal):
    journal.append("period", {"t": 1, "estimate": 2.0})
    journal.append("period", {"t": 2, "estimate": 3.0})
    lines = journal.path.read_text(encoding="utf-8").splitlines()
    payload = json.loads(lines[0])
    payload["body"]["estimate"] = 99.0
    lines[0] = json.dumps(payload)
    journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(ArtifactCorruptedError, match="checksum"):
        journal.records()


@pytest.mark.parametrize(
    "line",
    [
        "[1, 2, 3]",  # not an object
        '{"kind": "x", "body": {}}',  # missing checksum
        '{"kind": 5, "body": {}, "checksum": "00"}',  # kind not a string
        '{"kind": "x", "body": [], "checksum": "00"}',  # body not a dict
    ],
)
def test_malformed_records_never_parse(journal, line):
    journal.append("config", {"schema": 1})
    journal.append("period", {"t": 1, "estimate": 2.0})
    original = journal.path.read_text(encoding="utf-8").splitlines()
    # As a torn tail: dropped.  Earlier: loud.
    journal.path.write_text(
        "\n".join([*original, line]) + "\n", encoding="utf-8"
    )
    assert len(journal.records()) == 2
    journal.path.write_text(
        "\n".join([original[0], line, original[1]]) + "\n", encoding="utf-8"
    )
    with pytest.raises(ArtifactCorruptedError):
        journal.records()

"""Determinism and resume regressions for the sharded sweep engine.

The contract under test: sharding changes *where* a trial runs, never *what*
it computes.  ``workers=4`` must be bit-identical to ``workers=1``, which
must be bit-identical to the pre-parallel serial loop (re-implemented here
verbatim as the frozen reference); an interrupted store-backed sweep must
resume by executing only the missing shards and still produce the identical
table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.accuracy import summarize_errors
from repro.core.params import ProtocolParams
from repro.sim.batch_engine import run_batch_engine
from repro.sim.parallel import plan_shards
from repro.sim.results import ResultTable
from repro.sim.runner import (
    TrialStatistics,
    _stable_name_key,
    run_trials,
    sweep,
)
from repro.sim.store import ResultStore
from repro.utils.rng import spawn_generators
from repro.workloads.generators import BoundedChangePopulation

_PARAMS = ProtocolParams(n=250, d=16, k=2, epsilon=1.0)
_SWEEP_KS = [1, 2]
_TRIALS = 4


@pytest.fixture
def states() -> np.ndarray:
    population = BoundedChangePopulation(_PARAMS.d, _PARAMS.k, exact_k=True)
    return population.sample(_PARAMS.n, np.random.default_rng(99))


# -- the frozen pre-parallel reference implementations ----------------------


def _pre_pr_run_trials(runner, states, params, *, trials, seed) -> TrialStatistics:
    """The historical serial ``run_trials`` loop, verbatim."""
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    generators = spawn_generators(seed, trials)
    max_errors, maes, rmses = [], [], []
    for rng in generators:
        result = runner(states, params, rng)
        summary = summarize_errors(result.estimates, result.true_counts)
        max_errors.append(summary.max_abs)
        maes.append(summary.mean_abs)
        rmses.append(summary.rmse)
    max_array = np.array(max_errors)
    return TrialStatistics(
        trials=trials,
        mean_max_abs=float(max_array.mean()),
        std_max_abs=float(max_array.std(ddof=1)) if trials > 1 else 0.0,
        worst_max_abs=float(max_array.max()),
        best_max_abs=float(max_array.min()),
        mean_mae=float(np.mean(maes)),
        mean_rmse=float(np.mean(rmses)),
    )


def _pre_pr_sweep(runners, base_params, parameter, values, *, trials, seed):
    """The historical serial ``sweep`` loop, verbatim."""
    table = ResultTable(
        title=f"sweep over {parameter}",
        columns=[parameter, "protocol", "mean_max_abs", "std_max_abs", "mean_mae"],
    )
    root = np.random.SeedSequence(seed)
    workload_rngs = spawn_generators(root, len(values))
    trial_base = root.spawn(1)[0]
    for position, value in enumerate(values):
        cast = float(value) if parameter == "epsilon" else int(value)
        params = base_params.with_updates(**{parameter: cast})
        population = BoundedChangePopulation(params.d, params.k, exact_k=True)
        point_states = population.sample(params.n, workload_rngs[position])
        for name, runner in runners.items():
            trial_seed = np.random.SeedSequence(
                entropy=trial_base.entropy,
                spawn_key=(*trial_base.spawn_key, position, _stable_name_key(name)),
            )
            statistics = _pre_pr_run_trials(
                runner, point_states, params, trials=trials, seed=trial_seed
            )
            table.add_row(
                **{parameter: float(value)},
                protocol=name,
                mean_max_abs=statistics.mean_max_abs,
                std_max_abs=statistics.std_max_abs,
                mean_mae=statistics.mean_mae,
            )
    return table


# -- bit-identity across worker counts --------------------------------------


def test_run_trials_bit_identical_across_worker_counts(states):
    serial = run_trials(None, states, _PARAMS, trials=_TRIALS, seed=7)
    for workers in (2, 4):
        parallel = run_trials(
            None, states, _PARAMS, trials=_TRIALS, seed=7, workers=workers
        )
        assert parallel == serial, f"workers={workers} diverged from serial"


def test_run_trials_matches_pre_pr_serial_path(states):
    expected = _pre_pr_run_trials(
        run_batch_engine, states, _PARAMS, trials=_TRIALS, seed=7
    )
    assert run_trials(None, states, _PARAMS, trials=_TRIALS, seed=7) == expected
    assert (
        run_trials(None, states, _PARAMS, trials=_TRIALS, seed=7, workers=4)
        == expected
    )


@pytest.mark.parametrize("workers", [2, 4])
def test_sweep_bit_identical_across_worker_counts(workers):
    serial = sweep(
        ["future_rand", "naive_unsplit"],
        _PARAMS,
        "k",
        _SWEEP_KS,
        trials=_TRIALS,
        seed=0,
    )
    parallel = sweep(
        ["future_rand", "naive_unsplit"],
        _PARAMS,
        "k",
        _SWEEP_KS,
        trials=_TRIALS,
        seed=0,
        workers=workers,
    )
    assert parallel.to_json() == serial.to_json()


def test_sweep_matches_pre_pr_serial_path():
    from repro.protocols import get_protocol

    runners = {
        "future_rand": run_batch_engine,
        "naive_unsplit": get_protocol("naive_unsplit"),
    }
    expected = _pre_pr_sweep(
        runners, _PARAMS, "k", _SWEEP_KS, trials=_TRIALS, seed=3
    )
    for workers in (1, 4):
        actual = sweep(
            ["future_rand", "naive_unsplit"],
            _PARAMS,
            "k",
            _SWEEP_KS,
            trials=_TRIALS,
            seed=3,
            workers=workers,
        )
        assert actual.to_json() == expected.to_json()


def test_sweep_shard_size_does_not_change_results():
    kwargs = dict(trials=_TRIALS, seed=5, workers=2)
    reference = sweep(None, _PARAMS, "k", _SWEEP_KS, shard_size=1, **kwargs)
    for shard_size in (2, 3, _TRIALS):
        other = sweep(None, _PARAMS, "k", _SWEEP_KS, shard_size=shard_size, **kwargs)
        assert other.to_json() == reference.to_json()


def test_plan_shards_covers_all_trials_exactly_once():
    assert plan_shards(5, 2) == [(0, 2), (2, 4), (4, 5)]
    assert plan_shards(4, 4) == [(0, 4)]
    assert plan_shards(1, 3) == [(0, 1)]
    with pytest.raises(ValueError):
        plan_shards(0, 1)
    with pytest.raises(ValueError):
        plan_shards(3, 0)


# -- store-backed execution and resume --------------------------------------

#: Mutable state for the interruptible runner (module-level so the runner
#: itself stays picklable; only exercised at workers=1).
_FLAKY = {"calls": 0, "fail_after": None}


def _flaky_runner(states, params, rng=None):
    _FLAKY["calls"] += 1
    if _FLAKY["fail_after"] is not None and _FLAKY["calls"] > _FLAKY["fail_after"]:
        raise RuntimeError("simulated crash mid-sweep")
    return run_batch_engine(states, params, rng)


@pytest.fixture
def flaky():
    _FLAKY["calls"] = 0
    _FLAKY["fail_after"] = None
    yield _FLAKY
    _FLAKY["calls"] = 0
    _FLAKY["fail_after"] = None


def _flaky_sweep(store, **overrides):
    kwargs = dict(trials=_TRIALS, seed=11, workers=1, store=store)
    kwargs.update(overrides)
    return sweep({"flaky": _flaky_runner}, _PARAMS, "k", _SWEEP_KS, **kwargs)


def test_interrupted_sweep_resumes_executing_only_missing_shards(
    tmp_path, flaky
):
    total_shards = len(_SWEEP_KS) * _TRIALS  # shard_size defaults to 1
    store = ResultStore(tmp_path / "results")

    flaky["fail_after"] = 5
    with pytest.raises(RuntimeError, match="simulated crash"):
        _flaky_sweep(store)
    completed = store.shard_count()
    assert 0 < completed < total_shards
    assert completed == 5  # everything that finished before the crash persisted

    flaky["fail_after"] = None
    flaky["calls"] = 0
    resumed = _flaky_sweep(store)
    assert flaky["calls"] == total_shards - completed, (
        "resume must execute exactly the missing shards"
    )
    assert store.shard_count() == total_shards

    uninterrupted = _flaky_sweep(store=None)
    assert resumed.to_json() == uninterrupted.to_json(), (
        "resumed table must be bit-identical to an uninterrupted run"
    )


def test_completed_sweep_rerun_recomputes_nothing(tmp_path, flaky):
    store = ResultStore(tmp_path / "results")
    first = _flaky_sweep(store)
    computed = flaky["calls"]
    assert computed == len(_SWEEP_KS) * _TRIALS

    flaky["calls"] = 0
    second = _flaky_sweep(store)
    assert flaky["calls"] == 0, "a completed sweep must reload every shard"
    assert second.to_json() == first.to_json()


def test_resume_false_recomputes_every_shard(tmp_path, flaky):
    store = ResultStore(tmp_path / "results")
    first = _flaky_sweep(store)
    flaky["calls"] = 0
    second = _flaky_sweep(store, resume=False)
    assert flaky["calls"] == len(_SWEEP_KS) * _TRIALS
    assert second.to_json() == first.to_json()


def test_store_backed_sweep_with_workers_matches_serial(tmp_path):
    store = ResultStore(tmp_path / "results")
    parallel = sweep(
        None, _PARAMS, "k", _SWEEP_KS, trials=_TRIALS, seed=2, workers=4,
        store=store,
    )
    assert store.shard_count() == len(_SWEEP_KS) * _TRIALS
    serial = sweep(None, _PARAMS, "k", _SWEEP_KS, trials=_TRIALS, seed=2)
    assert parallel.to_json() == serial.to_json()
    # And a reload-only pass (fresh sweep over a warm store) is identical too.
    reloaded = sweep(
        None, _PARAMS, "k", _SWEEP_KS, trials=_TRIALS, seed=2, store=store
    )
    assert reloaded.to_json() == serial.to_json()


def test_prespawned_seed_sequence_does_not_hit_stale_artifacts(tmp_path, states):
    """A SeedSequence that already spawned children gets fresh artifacts.

    ``seed.spawn`` advances the node's child counter, so two ``run_trials``
    calls with the *same* SeedSequence object draw different trial seeds and
    must produce different results — the artifact key includes the spawn
    state precisely so the second call cannot reload the first call's shards.
    """
    store = ResultStore(tmp_path / "results")
    seed = np.random.SeedSequence(0)
    first = run_trials(None, states, _PARAMS, trials=2, seed=seed, store=store)

    # Same store: different spawn state -> new artifacts, not a cache hit.
    second = run_trials(None, states, _PARAMS, trials=2, seed=seed, store=store)
    assert second != first
    assert store.shard_count() == 4

    # And each call matches what the store-less path computes.
    plain_first = run_trials(
        None, states, _PARAMS, trials=2, seed=np.random.SeedSequence(0)
    )
    assert first == plain_first


def test_run_trials_store_roundtrip_is_bit_identical(tmp_path, states):
    store = ResultStore(tmp_path / "results")
    computed = run_trials(
        None, states, _PARAMS, trials=_TRIALS, seed=13, store=store
    )
    assert store.shard_count() == _TRIALS
    reloaded = run_trials(
        None, states, _PARAMS, trials=_TRIALS, seed=13, store=store
    )
    assert reloaded == computed
    plain = run_trials(None, states, _PARAMS, trials=_TRIALS, seed=13)
    assert plain == computed

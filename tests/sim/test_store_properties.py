"""Property-based tests (hypothesis) for the persistent result store.

Three invariant families:

* **round-trip** — any ``ResultTable`` survives JSON serialization and any
  shard's metric columns survive the artifact write/load cycle bit-for-bit;
* **merge algebra** — ``merge_tables`` is commutative, idempotent and
  associative, so artifacts can be combined in any arrival order;
* **corruption detection** — any byte-level tampering with an artifact
  raises :class:`ArtifactCorruptedError` with an actionable message instead
  of being silently recomputed or crashing with a raw decode error.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.parallel import metrics_from_columns, metrics_to_columns
from repro.sim.results import ResultTable
from repro.sim.store import (
    ArtifactCorruptedError,
    ResultStore,
    ShardKey,
    merge_tables,
)

_cell = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12),
)
_column_names = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=8
    ),
    min_size=1,
    max_size=4,
    unique=True,
)


@st.composite
def tables(draw) -> ResultTable:
    columns = draw(_column_names)
    table = ResultTable(
        title=draw(st.text(max_size=20)),
        columns=list(columns),
        notes=draw(st.text(max_size=20)),
    )
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        row = {name: draw(_cell) for name in columns}
        table.add_row(**row)
    return table


@given(tables())
def test_result_table_json_roundtrip(table):
    restored = ResultTable.from_json(table.to_json())
    assert restored.title == table.title
    assert restored.columns == table.columns
    assert restored.rows == table.rows
    assert restored.notes == table.notes
    assert restored.to_json() == table.to_json()


_metrics = st.lists(
    st.tuples(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
    ),
    min_size=1,
    max_size=6,
)


def _key(start: int, stop: int, trials: int) -> ShardKey:
    return ShardKey(
        protocol="demo",
        params={"n": 100, "d": 16, "k": 2, "epsilon": 1.0, "beta": 0.05},
        seed_entropy=42,
        spawn_key=(1, 0),
        seed_spawn_base=0,
        trial_start=start,
        trial_stop=stop,
        trials_total=trials,
        states_sha256="0" * 64,
    )


@settings(max_examples=25)
@given(_metrics)
def test_shard_artifact_roundtrip_is_bit_identical(tmp_path_factory, metrics):
    store = ResultStore(tmp_path_factory.mktemp("store"))
    key = _key(0, len(metrics), len(metrics))
    store.write_shard(key, metrics_to_columns(metrics))
    body = store.load_shard(key)
    assert metrics_from_columns(body["metrics"]) == list(metrics)
    assert body["key"] == key.as_payload()


@given(tables(), tables())
def test_merge_is_commutative(a, b):
    assert merge_tables([a, b]).to_json() == merge_tables([b, a]).to_json()


@given(tables())
def test_merge_is_idempotent(a):
    once = merge_tables([a])
    twice = merge_tables([a, a])
    assert twice.to_json() == once.to_json()
    again = merge_tables([once, a])
    assert again.to_json() == once.to_json()


@given(tables(), tables(), tables())
@settings(max_examples=25)
def test_merge_is_associative(a, b, c):
    left = merge_tables([merge_tables([a, b]), c])
    right = merge_tables([a, merge_tables([b, c])])
    assert left.to_json() == right.to_json()


@given(tables(), tables())
def test_merge_preserves_every_distinct_row(a, b):
    merged = merge_tables([a, b])
    merged_rows = merged.rows
    for row in a.rows + b.rows:
        assert row in merged_rows


def test_merge_rejects_empty_input():
    with pytest.raises(ValueError, match="at least one"):
        merge_tables([])


# -- corruption detection ----------------------------------------------------


def _written_shard(tmp_path):
    store = ResultStore(tmp_path / "store")
    key = _key(0, 2, 2)
    path = store.write_shard(key, metrics_to_columns([(1.0, 2.0, 3.0), (4.0, 5.0, 6.0)]))
    return store, key, path


def test_missing_artifact_is_a_clean_cache_miss(tmp_path):
    store = ResultStore(tmp_path / "store")
    assert store.load_shard(_key(0, 1, 1)) is None


def test_truncated_artifact_raises_corruption_error(tmp_path):
    store, key, path = _written_shard(tmp_path)
    path.write_text(path.read_text()[:40])
    with pytest.raises(ArtifactCorruptedError, match="delete it"):
        store.load_shard(key)


def test_non_json_artifact_raises_corruption_error(tmp_path):
    store, key, path = _written_shard(tmp_path)
    path.write_bytes(b"\x00\xffnot json")
    with pytest.raises(ArtifactCorruptedError, match="not readable JSON"):
        store.load_shard(key)


def test_tampered_metric_fails_checksum(tmp_path):
    store, key, path = _written_shard(tmp_path)
    artifact = json.loads(path.read_text())
    artifact["metrics"]["max_abs"][0] += 1.0
    path.write_text(json.dumps(artifact))
    with pytest.raises(ArtifactCorruptedError, match="checksum"):
        store.load_shard(key)


def test_missing_field_raises_corruption_error(tmp_path):
    store, key, path = _written_shard(tmp_path)
    artifact = json.loads(path.read_text())
    del artifact["metrics"]
    path.write_text(json.dumps(artifact))
    with pytest.raises(ArtifactCorruptedError, match="missing fields"):
        store.load_shard(key)


def test_artifact_under_wrong_filename_is_rejected(tmp_path):
    store, key, path = _written_shard(tmp_path)
    other = _key(0, 1, 1)
    store.shards_dir.mkdir(parents=True, exist_ok=True)
    path.rename(store.shard_path(other))
    with pytest.raises(ArtifactCorruptedError, match="different shard key"):
        store.load_shard(other)


def test_corrupted_artifact_fails_resumed_sweep_loudly(tmp_path):
    """A resumed sweep must surface corruption, not silently recompute."""
    from repro.core.params import ProtocolParams
    from repro.sim.runner import sweep

    params = ProtocolParams(n=120, d=16, k=2, epsilon=1.0)
    store = ResultStore(tmp_path / "results")
    sweep(None, params, "k", [1, 2], trials=2, seed=0, store=store)
    victim = next(iter(store.shards_dir.glob("*.json")))
    victim.write_text(victim.read_text()[:-30])
    with pytest.raises(ArtifactCorruptedError):
        sweep(None, params, "k", [1, 2], trials=2, seed=0, store=store)

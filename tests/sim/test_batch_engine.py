"""Tests for the batched online simulation engine.

Covers the online contract (per-period snapshots, clock semantics, report
accounting, fault injection) and the statistical equivalence with the object
engine — the two engines share every randomizer kernel, so their estimate
distributions must be indistinguishable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.core.simple_randomizer import SimpleRandomizerFamily
from repro.sim.batch_engine import BatchSimulationEngine, run_batch_engine
from repro.sim.engine import SimulationEngine, StepSnapshot
from repro.sim.runner import run_trials
from repro.workloads import telemetry_fleet_scenario
from repro.workloads.generators import BoundedChangePopulation


class TestOnlineContract:
    def test_callback_invoked_every_period(self, rng):
        params = ProtocolParams(n=40, d=8, k=2, epsilon=1.0)
        states = np.zeros((40, 8), dtype=np.int8)
        snapshots: list[StepSnapshot] = []
        BatchSimulationEngine(params, rng=rng).run(states, snapshots.append)
        assert [snap.t for snap in snapshots] == list(range(1, 9))
        assert all(snap.true_count == 0 for snap in snapshots)

    def test_result_contract(self, small_params, small_states, rng):
        result = BatchSimulationEngine(small_params, rng=rng).run(small_states)
        assert result.estimates.shape == (small_params.d,)
        assert result.orders.shape == (small_params.n,)
        np.testing.assert_array_equal(
            result.true_counts, small_states.sum(axis=0)
        )

    def test_report_accounting_exact(self, small_params, small_states, rng):
        """Without drops, a user of order h sends exactly d >> h reports."""
        snapshots: list[StepSnapshot] = []
        result = BatchSimulationEngine(small_params, rng=rng).run(
            small_states, snapshots.append
        )
        delivered = sum(snap.reports_this_period for snap in snapshots)
        expected = int((small_params.d >> result.orders).sum())
        assert delivered == expected

    def test_emission_schedule(self, rng):
        """At period t only orders dividing t emit: report counts are
        monotone in the divisibility structure of t."""
        params = ProtocolParams(n=200, d=16, k=2, epsilon=1.0)
        states = np.zeros((200, 16), dtype=np.int8)
        snapshots: list[StepSnapshot] = []
        result = BatchSimulationEngine(params, rng=rng).run(
            states, snapshots.append
        )
        counts = np.bincount(result.orders, minlength=params.d.bit_length())
        for snap in snapshots:
            emitting = [
                order
                for order in range(params.d.bit_length())
                if snap.t % (1 << order) == 0
            ]
            assert snap.reports_this_period == int(counts[emitting].sum())

    def test_estimates_match_final_server_state(self, small_params, small_states):
        """The per-period online estimates equal the end-of-run reconstruction:
        every node of C(t) is complete by time t."""
        engine = BatchSimulationEngine(
            small_params, rng=np.random.default_rng(11)
        )
        snapshots: list[StepSnapshot] = []
        result = engine.run(small_states, snapshots.append)
        np.testing.assert_allclose(
            result.estimates, [snap.estimate for snap in snapshots]
        )

    def test_runner_adapter(self, small_params, small_states):
        result = run_batch_engine(
            small_states, small_params, np.random.default_rng(0)
        )
        assert result.estimates.shape == (small_params.d,)
        stats = run_trials(
            run_batch_engine, small_states, small_params, trials=2, seed=1
        )
        assert stats.trials == 2

    def test_scenario_integration(self):
        scenario = telemetry_fleet_scenario(
            n=300, d=16, k=3, rng=np.random.default_rng(2)
        )
        result = scenario.run(np.random.default_rng(3), report_drop_rate=0.2)
        assert result.estimates.shape == (16,)

    def test_shape_validation(self, rng):
        params = ProtocolParams(n=10, d=8, k=1, epsilon=1.0)
        engine = BatchSimulationEngine(params, rng=rng)
        with pytest.raises(ValueError):
            engine.run(np.zeros((10, 4), dtype=np.int8))

    def test_rejects_change_budget_violation(self, rng):
        params = ProtocolParams(n=4, d=8, k=1, epsilon=1.0)
        states = np.tile(np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=np.int8), (4, 1))
        with pytest.raises(ValueError):
            BatchSimulationEngine(params, rng=rng).run(states)

    def test_invalid_drop_rate(self):
        params = ProtocolParams(n=10, d=8, k=1, epsilon=1.0)
        with pytest.raises(ValueError):
            BatchSimulationEngine(params, report_drop_rate=1.0)

    def test_custom_family(self, small_params, small_states, rng):
        family = SimpleRandomizerFamily(small_params.k, small_params.epsilon)
        result = BatchSimulationEngine(small_params, family=family, rng=rng).run(
            small_states
        )
        assert result.family_name == family.name
        assert result.c_gap == family.c_gap


class TestFaultInjection:
    def test_drop_rate_biases_towards_zero(self):
        params = ProtocolParams(n=400, d=8, k=1, epsilon=1.0)
        family = SimpleRandomizerFamily(1, 1.0)
        states = np.ones((400, 8), dtype=np.int8)
        full_mags, dropped_mags = [], []
        for trial in range(10):
            full = BatchSimulationEngine(
                params, family=family, rng=np.random.default_rng(trial)
            ).run(states)
            dropped = BatchSimulationEngine(
                params,
                family=family,
                rng=np.random.default_rng(trial),
                report_drop_rate=0.9,
            ).run(states)
            full_mags.append(abs(full.estimates[-1]))
            dropped_mags.append(abs(dropped.estimates[-1]))
        assert np.mean(dropped_mags) < np.mean(full_mags)

    def test_dropped_reports_counted_out(self):
        params = ProtocolParams(n=500, d=16, k=2, epsilon=1.0)
        states = np.zeros((500, 16), dtype=np.int8)
        snapshots: list[StepSnapshot] = []
        result = BatchSimulationEngine(
            params, rng=np.random.default_rng(5), report_drop_rate=0.5
        ).run(states, snapshots.append)
        delivered = sum(snap.reports_this_period for snap in snapshots)
        sent = int((params.d >> result.orders).sum())
        # Binomial(sent, 0.5): delivered must sit well inside (0.4, 0.6) * sent.
        assert 0.4 * sent < delivered < 0.6 * sent

    def test_invalid_duplicate_rate(self):
        params = ProtocolParams(n=10, d=8, k=1, epsilon=1.0)
        with pytest.raises(ValueError):
            BatchSimulationEngine(params, report_duplicate_rate=1.0)
        with pytest.raises(ValueError):
            BatchSimulationEngine(params, report_duplicate_rate=-0.1)

    def test_duplicate_rate_rejected_in_chunked_mode(self):
        params = ProtocolParams(n=10, d=8, k=1, epsilon=1.0)
        with pytest.raises(ValueError, match="monolithic"):
            BatchSimulationEngine(
                params, report_duplicate_rate=0.1, chunk_size=4
            )

    def test_duplicated_reports_counted_in(self):
        params = ProtocolParams(n=500, d=16, k=2, epsilon=1.0)
        states = np.zeros((500, 16), dtype=np.int8)
        snapshots: list[StepSnapshot] = []
        result = BatchSimulationEngine(
            params, rng=np.random.default_rng(5), report_duplicate_rate=0.5
        ).run(states, snapshots.append)
        delivered = sum(snap.reports_this_period for snap in snapshots)
        sent = int((params.d >> result.orders).sum())
        # Each report arrives once plus an independent Binomial(sent, 0.5)
        # retransmission: delivered must sit well inside (1.4, 1.6) * sent.
        assert 1.4 * sent < delivered < 1.6 * sent

    def test_zero_duplicate_rate_is_bit_identical_to_no_fault(self):
        """Rate 0 consumes no randomness: the historical path is unchanged."""
        params = ProtocolParams(n=200, d=16, k=2, epsilon=1.0)
        states = BoundedChangePopulation(16, 2).sample(
            200, np.random.default_rng(0)
        )
        plain = BatchSimulationEngine(
            params, rng=np.random.default_rng(9)
        ).run(states)
        with_knob = BatchSimulationEngine(
            params, rng=np.random.default_rng(9), report_duplicate_rate=0.0
        ).run(states)
        np.testing.assert_array_equal(plain.estimates, with_knob.estimates)

    def test_duplicates_inflate_the_estimate_magnitude(self):
        """Retransmitted reports double-count noise: error grows with p."""
        params = ProtocolParams(n=400, d=8, k=1, epsilon=1.0)
        family = SimpleRandomizerFamily(1, 1.0)
        states = np.ones((400, 8), dtype=np.int8)
        plain_err, duplicated_err = [], []
        for trial in range(10):
            plain = BatchSimulationEngine(
                params, family=family, rng=np.random.default_rng(trial)
            ).run(states)
            duplicated = BatchSimulationEngine(
                params,
                family=family,
                rng=np.random.default_rng(trial),
                report_duplicate_rate=0.9,
            ).run(states)
            plain_err.append(np.abs(plain.estimates - 400).max())
            duplicated_err.append(np.abs(duplicated.estimates - 400).max())
        assert np.mean(duplicated_err) > np.mean(plain_err)

    def test_runner_adapter_threads_duplicate_rate(self):
        params = ProtocolParams(n=50, d=8, k=1, epsilon=1.0)
        states = np.zeros((50, 8), dtype=np.int8)
        result = run_batch_engine(
            states,
            params,
            np.random.default_rng(3),
            report_duplicate_rate=0.3,
        )
        assert result.estimates.shape == (8,)
        with pytest.raises(ValueError):
            run_batch_engine(
                states, params, report_duplicate_rate=0.3, chunk_size=16
            )


class TestStatisticalEquivalence:
    """Batch engine vs. object engine: same protocol, same distributions."""

    def test_estimates_agree_within_monte_carlo_error(self):
        params = ProtocolParams(n=400, d=16, k=3, epsilon=1.0)
        states = np.zeros((400, 16), dtype=np.int8)
        states[:250, 4:] = 1  # a visible signal: 250 users flip at t=5
        trials = 25
        batch_final = np.array(
            [
                BatchSimulationEngine(params, rng=np.random.default_rng(300 + t))
                .run(states)
                .estimates[-1]
                for t in range(trials)
            ]
        )
        object_final = np.array(
            [
                SimulationEngine(params, rng=np.random.default_rng(400 + t))
                .run(states)
                .estimates[-1]
                for t in range(trials)
            ]
        )
        # Means must agree within a 4-sigma two-sample Monte-Carlo bound...
        pooled_se = np.sqrt(
            np.var(batch_final, ddof=1) / trials
            + np.var(object_final, ddof=1) / trials
        )
        assert abs(batch_final.mean() - object_final.mean()) < 4 * pooled_se
        # ...and both must be unbiased for the true count.
        true_final = float(states[:, -1].sum())
        assert abs(batch_final.mean() - true_final) < 4 * np.std(
            batch_final, ddof=1
        ) / np.sqrt(trials)

    def test_error_scale_agrees(self, small_params, small_states):
        trials = 15
        batch_errors = [
            BatchSimulationEngine(
                small_params, rng=np.random.default_rng(500 + t)
            )
            .run(small_states)
            .estimates[-1]
            - small_states[:, -1].sum()
            for t in range(trials)
        ]
        object_errors = [
            SimulationEngine(small_params, rng=np.random.default_rng(600 + t))
            .run(small_states)
            .estimates[-1]
            - small_states[:, -1].sum()
            for t in range(trials)
        ]
        ratio = np.std(batch_errors, ddof=1) / np.std(object_errors, ddof=1)
        assert 0.3 < ratio < 3.0

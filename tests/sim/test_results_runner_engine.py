"""Tests for the simulation layer: results, runner, engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.core.simple_randomizer import SimpleRandomizerFamily
from repro.core.vectorized import run_batch
from repro.sim.engine import SimulationEngine, StepSnapshot
from repro.sim.results import ResultTable, format_markdown_table
from repro.sim.runner import run_trials, sweep


class TestResultTable:
    def test_add_row_and_column(self):
        table = ResultTable(title="t", columns=["a"])
        table.add_row(a=1, b=2)
        assert table.columns == ["a", "b"]
        assert table.column("a") == [1]
        assert table.column("b") == [2]

    def test_markdown_render(self):
        table = ResultTable(title="demo", columns=["x", "y"])
        table.add_row(x=1, y=0.5)
        text = table.to_markdown()
        assert "### demo" in text
        assert "| x | y   |" in text

    def test_markdown_formats_floats(self):
        assert "1.234e-05" in format_markdown_table(
            ["v"], [{"v": 1.234e-5}]
        )
        assert "0" in format_markdown_table(["v"], [{"v": 0.0}])

    def test_json_roundtrip(self):
        table = ResultTable(title="t", columns=["a"], notes="n")
        table.add_row(a=1.5)
        clone = ResultTable.from_json(table.to_json())
        assert clone.title == "t"
        assert clone.notes == "n"
        assert clone.rows == table.rows

    def test_csv(self):
        table = ResultTable(title="t", columns=["a", "b"])
        table.add_row(a=1, b=2)
        table.add_row(a=3)
        lines = table.to_csv().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"
        assert lines[2] == "3,"

    def test_missing_cells_render_empty(self):
        table = ResultTable(title="t", columns=["a", "b"])
        table.add_row(a=1)
        assert "| 1 |   |" in table.to_markdown()


class TestRunTrials:
    def test_statistics_fields(self, small_params, small_states):
        stats = run_trials(run_batch, small_states, small_params, trials=3, seed=0)
        assert stats.trials == 3
        assert stats.best_max_abs <= stats.mean_max_abs <= stats.worst_max_abs
        assert stats.std_max_abs >= 0.0
        assert set(stats.as_dict()) >= {"mean_max_abs", "mean_mae", "mean_rmse"}

    def test_single_trial_zero_std(self, small_params, small_states):
        stats = run_trials(run_batch, small_states, small_params, trials=1, seed=0)
        assert stats.std_max_abs == 0.0

    def test_reproducible(self, small_params, small_states):
        a = run_trials(run_batch, small_states, small_params, trials=2, seed=9)
        b = run_trials(run_batch, small_states, small_params, trials=2, seed=9)
        assert a.mean_max_abs == b.mean_max_abs

    def test_rejects_zero_trials(self, small_params, small_states):
        with pytest.raises(ValueError):
            run_trials(run_batch, small_states, small_params, trials=0)


class TestSweep:
    def test_table_shape(self):
        params = ProtocolParams(n=200, d=16, k=2, epsilon=1.0)
        table = sweep({"fr": run_batch}, params, "k", [1, 2], trials=1, seed=0)
        assert table.column("k") == [1.0, 2.0]
        assert len(table.rows) == 2

    def test_multiple_runners_share_workload(self):
        params = ProtocolParams(n=200, d=16, k=2, epsilon=1.0)
        table = sweep(
            {"a": run_batch, "b": run_batch}, params, "n", [100, 200], trials=1, seed=0
        )
        assert len(table.rows) == 4
        assert set(table.column("protocol")) == {"a", "b"}

    def test_rejects_unknown_parameter(self):
        params = ProtocolParams(n=100, d=16, k=2, epsilon=1.0)
        with pytest.raises(ValueError):
            sweep({"fr": run_batch}, params, "beta", [0.1], trials=1)

    def test_rejects_empty_values(self):
        params = ProtocolParams(n=100, d=16, k=2, epsilon=1.0)
        with pytest.raises(ValueError):
            sweep({"fr": run_batch}, params, "k", [], trials=1)

    def test_custom_workload(self):
        params = ProtocolParams(n=100, d=16, k=2, epsilon=1.0)
        calls = []

        def workload(p, rng):
            calls.append(p.k)
            return np.zeros((p.n, p.d), dtype=np.int8)

        sweep({"fr": run_batch}, params, "k", [1, 2], trials=1, workload=workload)
        assert calls == [1, 2]


class TestSweepReproducibility:
    """Trial seeds descend from the root SeedSequence spawn tree — not from
    ``hash(str)``, which is salted per process and silently broke same-seed
    reproducibility."""

    def test_same_seed_sweeps_are_identical(self):
        params = ProtocolParams(n=200, d=16, k=2, epsilon=1.0)
        first = sweep(
            ["future_rand", "erlingsson"], params, "k", [1, 2], trials=2, seed=11
        )
        second = sweep(
            ["future_rand", "erlingsson"], params, "k", [1, 2], trials=2, seed=11
        )
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self):
        params = ProtocolParams(n=200, d=16, k=2, epsilon=1.0)
        first = sweep(None, params, "k", [2], trials=2, seed=1)
        second = sweep(None, params, "k", [2], trials=2, seed=2)
        assert first.rows[0]["mean_max_abs"] != second.rows[0]["mean_max_abs"]

    def test_runners_get_independent_trial_seeds(self):
        # Two names for the same runner at the same sweep point must not
        # replay each other's randomness.
        params = ProtocolParams(n=200, d=16, k=2, epsilon=1.0)
        table = sweep(
            {"a": run_batch, "b": run_batch}, params, "k", [2], trials=2, seed=0
        )
        assert table.rows[0]["mean_max_abs"] != table.rows[1]["mean_max_abs"]

    def test_reproducible_across_processes(self, tmp_path):
        """The real regression: ``hash(str)`` salting differs per process."""
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        script = (
            "import json\n"
            "from repro.core.params import ProtocolParams\n"
            "from repro.sim.runner import sweep\n"
            "params = ProtocolParams(n=200, d=16, k=2, epsilon=1.0)\n"
            "table = sweep(['future_rand', 'naive_split'], params, 'k', [1, 2],"
            " trials=2, seed=17)\n"
            "print(json.dumps(table.to_json()))\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        env.pop("PYTHONHASHSEED", None)  # let each process pick its own salt
        outputs = [
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout
            for _ in range(2)
        ]
        assert json.loads(outputs[0]) == json.loads(outputs[1])


class TestSimulationEngine:
    def test_callback_invoked_every_period(self, rng):
        params = ProtocolParams(n=40, d=8, k=2, epsilon=1.0)
        states = np.zeros((40, 8), dtype=np.int8)
        engine = SimulationEngine(params, rng=rng)
        snapshots: list[StepSnapshot] = []
        engine.run(states, snapshots.append)
        assert [snap.t for snap in snapshots] == list(range(1, 9))
        assert all(snap.true_count == 0 for snap in snapshots)

    def test_snapshot_error_property(self):
        snapshot = StepSnapshot(t=1, estimate=5.0, true_count=3, reports_this_period=2)
        assert snapshot.error == 2.0

    def test_result_matches_run_online_contract(self, rng):
        params = ProtocolParams(n=30, d=8, k=2, epsilon=1.0)
        states = np.zeros((30, 8), dtype=np.int8)
        states[:10, 4:] = 1
        result = SimulationEngine(params, rng=rng).run(states)
        assert result.estimates.shape == (8,)
        assert result.true_counts[-1] == 10

    def test_drop_rate_biases_towards_zero(self):
        """With most reports dropped, estimates shrink towards zero."""
        params = ProtocolParams(n=150, d=8, k=1, epsilon=1.0)
        family = SimpleRandomizerFamily(1, 1.0)
        states = np.ones((150, 8), dtype=np.int8)
        full_mags, dropped_mags = [], []
        for trial in range(10):
            full = SimulationEngine(
                params, family=family, rng=np.random.default_rng(trial)
            ).run(states)
            dropped = SimulationEngine(
                params,
                family=family,
                rng=np.random.default_rng(trial),
                report_drop_rate=0.9,
            ).run(states)
            full_mags.append(abs(full.estimates[-1]))
            dropped_mags.append(abs(dropped.estimates[-1]))
        # The undropped run estimates ~n at the end; dropping 90% of reports
        # shrinks the (debiased) estimate magnitude accordingly.
        assert np.mean(dropped_mags) < np.mean(full_mags)

    def test_invalid_drop_rate(self):
        params = ProtocolParams(n=10, d=8, k=1, epsilon=1.0)
        with pytest.raises(ValueError):
            SimulationEngine(params, report_drop_rate=1.0)

    def test_estimate_bias_scales_with_drop_rate(self):
        """Each report survives with probability 1 - q, so the (debiased)
        estimate's expectation shrinks by exactly that factor: the mean final
        estimate at drop rate q must track (1 - q) * n."""
        params = ProtocolParams(n=200, d=8, k=1, epsilon=1.0)
        family = SimpleRandomizerFamily(1, 1.0)
        states = np.ones((200, 8), dtype=np.int8)
        trials = 12
        mean_final = {}
        for q in (0.0, 0.5, 0.9):
            finals = [
                SimulationEngine(
                    params,
                    family=family,
                    rng=np.random.default_rng(1000 * trial + int(q * 10)),
                    report_drop_rate=q,
                ).run(states).estimates[-1]
                for trial in range(trials)
            ]
            mean_final[q] = float(np.mean(finals))
        # Monotone shrinkage towards zero...
        assert abs(mean_final[0.9]) < abs(mean_final[0.5]) < abs(mean_final[0.0])
        # ...and proportional to the survival rate, within Monte-Carlo slack.
        for q in (0.5, 0.9):
            expected = (1.0 - q) * params.n
            assert mean_final[q] == pytest.approx(expected, abs=0.35 * params.n)

    def test_reports_this_period_accounts_for_drops(self):
        """Snapshot report counts must reflect delivery, not emission: without
        drops the total equals the exact per-order schedule; with drops it
        falls binomially below it."""
        params = ProtocolParams(n=300, d=16, k=2, epsilon=1.0)
        states = np.zeros((300, 16), dtype=np.int8)
        full_snaps: list[StepSnapshot] = []
        result = SimulationEngine(params, rng=np.random.default_rng(7)).run(
            states, full_snaps.append
        )
        sent = int((params.d >> result.orders).sum())
        assert sum(snap.reports_this_period for snap in full_snaps) == sent

        dropped_snaps: list[StepSnapshot] = []
        dropped_result = SimulationEngine(
            params, rng=np.random.default_rng(7), report_drop_rate=0.5
        ).run(states, dropped_snaps.append)
        dropped_sent = int((params.d >> dropped_result.orders).sum())
        delivered = sum(snap.reports_this_period for snap in dropped_snaps)
        # Binomial(sent, 0.5) concentrates well inside (0.4, 0.6) * sent.
        assert 0.4 * dropped_sent < delivered < 0.6 * dropped_sent

    def test_shape_validation(self, rng):
        params = ProtocolParams(n=10, d=8, k=1, epsilon=1.0)
        engine = SimulationEngine(params, rng=rng)
        with pytest.raises(ValueError):
            engine.run(np.zeros((10, 4), dtype=np.int8))

"""Baseline add/expire behavior and file round-tripping."""

from __future__ import annotations

import json

import pytest

from repro.lint import Baseline, Finding, write_baseline


def make_finding(rule="REP101", path="src/repro/sim/x.py", line=3, snippet="bad()"):
    return Finding(
        rule=rule,
        slug="fixture",
        path=path,
        line=line,
        column=0,
        message="fixture finding",
        hint="fix it",
        snippet=snippet,
    )


class TestApply:
    def test_empty_baseline_reports_everything_new(self):
        finding = make_finding()
        new, baselined, stale = Baseline().apply([finding])
        assert (new, baselined, stale) == ([finding], [], [])

    def test_matching_finding_is_absorbed(self):
        finding = make_finding()
        baseline = Baseline()
        baseline.counts[finding.fingerprint()] = 1
        new, baselined, stale = baseline.apply([finding])
        assert new == [] and baselined == [finding] and stale == []

    def test_fingerprint_survives_line_moves(self):
        moved = make_finding(line=99)
        baseline = Baseline()
        baseline.counts[make_finding(line=3).fingerprint()] = 1
        new, baselined, _ = baseline.apply([moved])
        assert new == [] and baselined == [moved]

    def test_counts_budget_duplicates(self):
        finding = make_finding()
        baseline = Baseline()
        baseline.counts[finding.fingerprint()] = 1
        new, baselined, _ = baseline.apply([finding, finding])
        assert len(baselined) == 1 and len(new) == 1

    def test_fixed_finding_goes_stale(self):
        gone = make_finding(snippet="already_fixed()")
        baseline = Baseline()
        baseline.counts[gone.fingerprint()] = 1
        new, baselined, stale = baseline.apply([])
        assert new == [] and baselined == []
        assert stale == [gone.fingerprint()]


class TestFile:
    def test_round_trip(self, tmp_path):
        findings = [make_finding(), make_finding(path="src/repro/sim/y.py")]
        path = write_baseline(findings, tmp_path / "lint-baseline.json")
        loaded = Baseline.load(path)
        new, baselined, stale = loaded.apply(findings)
        assert new == [] and stale == [] and len(baselined) == 2

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.counts == {}

    def test_duplicate_findings_aggregate_counts(self, tmp_path):
        finding = make_finding()
        path = write_baseline([finding, finding], tmp_path / "b.json")
        payload = json.loads(path.read_text())
        (entry,) = payload["findings"]
        assert entry["count"] == 2
        assert entry["rule"] == finding.rule

    def test_notes_are_preserved_through_rewrite(self, tmp_path):
        finding = make_finding()
        note = {finding.fingerprint(): "pinned output; fix at next regen"}
        path = write_baseline([finding], tmp_path / "b.json", notes=note)
        payload = json.loads(path.read_text())
        assert payload["findings"][0]["note"] == note[finding.fingerprint()]
        assert Baseline.load(path).notes == note

    def test_unknown_schema_is_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"schema": 99, "findings": []}))
        with pytest.raises(ValueError, match="schema"):
            Baseline.load(path)

"""Per-rule fixture battery: every rule flags its bad snippet, passes its good one."""

from __future__ import annotations

import pytest

from repro.lint import RULES, available_rules, get_rule, lint_source, register_rule
from repro.lint.checks_ast import SeedlessRngRule

#: (rule id, rel_path placing the snippet in scope, bad source, good source).
FIXTURES = [
    (
        "REP101",
        "src/repro/sim/fixture.py",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\ndef f(seed):\n    return np.random.default_rng(seed)\n",
    ),
    (
        "REP101",
        "src/repro/kernels/fixture.py",
        "import numpy as np\nx = np.random.normal(0.0, 1.0, 10)\n",
        "import numpy as np\ndef f(rng):\n    return rng.normal(0.0, 1.0, 10)\n",
    ),
    (
        "REP102",
        "src/repro/sim/fixture.py",
        "import numpy as np\ndef f(seed, k):\n"
        "    return np.random.default_rng(seed + k)\n",
        "import numpy as np\ndef f(root, k):\n"
        "    child = np.random.SeedSequence(\n"
        "        entropy=root.entropy, spawn_key=(*root.spawn_key, k)\n"
        "    )\n"
        "    return np.random.default_rng(child)\n",
    ),
    (
        "REP102",
        "src/repro/experiments/fixture.py",
        "import numpy as np\ndef f(seed):\n"
        "    return np.random.SeedSequence(seed * 1000 + 1)\n",
        "import numpy as np\ndef f(seed):\n"
        "    return np.random.SeedSequence(seed).spawn(2)[1]\n",
    ),
    (
        "REP103",
        "src/repro/sim/fixture.py",
        "def key(name, position):\n    return hash((name, position))\n",
        "import zlib\ndef key(name):\n    return zlib.crc32(name.encode())\n",
    ),
    (
        "REP104",
        "src/repro/kernels/fixture.py",
        "import time\ndef f():\n    return time.time()\n",
        "import time\ndef f():\n    return time.perf_counter()\n",
    ),
    (
        "REP104",
        "src/repro/sim/fixture.py",
        "import random\n",
        "import numpy as np\n",
    ),
    (
        "REP104",
        "src/repro/protocols/fixture.py",
        "import os\ndef f():\n    return os.urandom(8)\n",
        "def f(rng):\n    return rng.bytes(8)\n",
    ),
    (
        "REP105",
        "src/repro/sim/fixture.py",
        "def f(states, params):\n"
        "    return run_trials(lambda s, p, r: None, states, params)\n",
        "def runner(s, p, r):\n    return None\n"
        "def f(states, params):\n    return run_trials(runner, states, params)\n",
    ),
    (
        "REP105",
        "tests/fixture.py",
        "def outer(pool, job):\n"
        "    def inner(x):\n        return x\n"
        "    return pool.submit(inner, job)\n",
        "def work(x):\n    return x\n"
        "def outer(pool, job):\n    return pool.submit(work, job)\n",
    ),
    (
        "REP106",
        "src/repro/sim/fixture.py",
        "def f(values):\n"
        "    total = 0.0\n"
        "    for v in set(values):\n        total += v\n"
        "    return total\n",
        "def f(values):\n"
        "    total = 0.0\n"
        "    for v in sorted(set(values)):\n        total += v\n"
        "    return total\n",
    ),
    (
        "REP106",
        "src/repro/analysis/fixture.py",
        "def f(names):\n    return [n.upper() for n in {x for x in names}]\n",
        "def f(names):\n    return [n.upper() for n in sorted({x for x in names})]\n",
    ),
    (
        "REP106",
        "src/repro/sim/fixture.py",
        "def f(values):\n    return sum({abs(v) for v in values})\n",
        "def f(values):\n    return sum(sorted({abs(v) for v in values}))\n",
    ),
    (
        "REP108",
        "src/repro/kernels/reference.py",
        "from repro.kernels.fast import FastKernel\n",
        "from repro.kernels.base import RandomizerKernel\n",
    ),
    (
        "REP108",
        "src/repro/kernels/reference.py",
        "from repro.kernels import alias\n",
        "from repro.kernels import base\n",
    ),
    (
        "REP108",
        "src/repro/kernels/reference.py",
        "from . import fast\n",
        "from . import base\n",
    ),
    (
        "REP109",
        "src/repro/sim/fixture.py",
        "def drive(server, reports):\n"
        "    for t, batch in enumerate(reports, start=1):\n"
        "        server.receive_batch(0, t, batch)\n",
        "def drive(server, reports):\n"
        "    for t, batch in enumerate(reports, start=1):\n"
        "        server.advance_to(t)\n"
        "        server.receive_batch(0, t, batch)\n",
    ),
    (
        "REP109",
        "src/repro/protocols/fixture.py",
        "def fold(server, order, index, total, count):\n"
        "    return server.receive_aggregate(order, index, total, count)\n",
        "def build(d, c_gap, aggregates):\n"
        "    server = Server(d, c_gap, enforce_clock=False)\n"
        "    for order, index, total, count in aggregates:\n"
        "        server.receive_aggregate(order, index, total, count)\n"
        "    return server\n",
    ),
    (
        "REP110",
        "src/repro/sim/fixture.py",
        "import time\ndef retry(fn, attempts):\n"
        "    for n in range(attempts):\n"
        "        try:\n"
        "            return fn()\n"
        "        except OSError:\n"
        "            time.sleep(0.5 * 2**n)\n",
        "from repro.faults import SimulatedClock\n"
        "def retry(fn, attempts, policy):\n"
        "    clock = SimulatedClock()\n"
        "    for n in range(attempts):\n"
        "        try:\n"
        "            return fn()\n"
        "        except OSError:\n"
        "            clock.advance(policy.backoff(n))\n",
    ),
    (
        "REP110",
        "src/repro/sim/fixture.py",
        "import asyncio\nasync def drain(queue):\n"
        "    while not queue.empty():\n"
        "        await asyncio.sleep(0.1)\n",
        "import asyncio\nasync def drain(queue):\n"
        "    while not queue.empty():\n"
        "        await asyncio.sleep(0)\n",
    ),
]


@pytest.mark.parametrize(
    "rule_id, rel_path, bad, good",
    FIXTURES,
    ids=[f"{rule_id}-{index}" for index, (rule_id, *_) in enumerate(FIXTURES)],
)
def test_rule_flags_bad_and_passes_good(rule_id, rel_path, bad, good):
    bad_findings = lint_source(bad, rel_path)
    assert any(f.rule == rule_id for f in bad_findings), (
        f"{rule_id} must flag its bad fixture; got {bad_findings!r}"
    )
    good_findings = [f for f in lint_source(good, rel_path) if f.rule == rule_id]
    assert good_findings == [], f"{rule_id} must pass its good fixture"


def test_every_shipped_rule_has_a_fixture():
    ast_rules = set(available_rules()) - {"REP107"}  # REP107 is introspection
    assert {rule_id for rule_id, *_ in FIXTURES} == ast_rules


def test_scoped_rules_stay_silent_outside_scope():
    bad = "import numpy as np\nrng = np.random.default_rng()\n"
    # REP101 is scoped to sim/kernels/protocols/workloads; the CLI layer may
    # seed however it likes.
    assert [f.rule for f in lint_source(bad, "src/repro/cli.py")] == []


def test_finding_carries_hint_and_fingerprint():
    findings = lint_source(
        "import numpy as np\nrng = np.random.default_rng()\n",
        "src/repro/sim/fixture.py",
    )
    (finding,) = findings
    assert finding.rule == "REP101"
    assert finding.hint
    assert finding.snippet == "rng = np.random.default_rng()"
    assert len(finding.fingerprint()) == 16
    assert finding.fingerprint() == finding.fingerprint()


def test_registry_lookup_by_id_and_slug():
    assert get_rule("REP101") is get_rule("seedless-rng")
    with pytest.raises(KeyError, match="REP101"):
        get_rule("REP999")


def test_register_rule_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_rule(SeedlessRngRule())

    class Impostor(SeedlessRngRule):
        id = "REP901"

    with pytest.raises(ValueError, match="slug"):
        register_rule(Impostor())
    assert "REP901" not in RULES


def test_rule_metadata_is_complete():
    for rule in RULES.values():
        description = rule.describe()
        assert description["summary"] and description["rationale"]
        assert description["hint"], f"{rule.id} must ship a fix hint"


def test_seed_arithmetic_skips_blessed_idioms():
    # Width constants (2**63), spawn_key concatenation, and plain variables
    # must not trip REP102 — these are the repo's blessed derivations.
    blessed = (
        "import numpy as np\n"
        "def f(seed, base, position):\n"
        "    a = np.random.default_rng(seed)\n"
        "    b = np.random.default_rng(int(seed))\n"
        "    c = np.random.SeedSequence(\n"
        "        entropy=base.entropy, spawn_key=(*base.spawn_key, position)\n"
        "    )\n"
        "    d = int(a.integers(0, 2**63 - 1))\n"
        "    return a, b, c, d\n"
    )
    assert [f.rule for f in lint_source(blessed, "src/repro/sim/fixture.py")] == []

"""Engine mechanics: walking, scoping, project-rule gating, and the meta-test."""

from __future__ import annotations

import pytest

from repro.lint import Baseline, collect_files, lint_paths, lint_source, repo_root
from repro.lint.checks_project import CapabilityMetadataRule


class TestLintSource:
    def test_syntax_error_becomes_a_finding(self):
        (finding,) = lint_source("def broken(:\n", "src/repro/sim/bad.py")
        assert finding.rule == "PARSE"
        assert finding.line == 1
        assert "parse" in finding.message

    def test_findings_are_sorted_deterministically(self):
        source = (
            "import numpy as np\n"
            "import random\n"
            "b = np.random.default_rng()\n"
            "a = np.random.default_rng()\n"
        )
        findings = lint_source(source, "src/repro/sim/fixture.py")
        assert [f.sort_key() for f in findings] == sorted(
            f.sort_key() for f in findings
        )
        assert [f.rule for f in findings] == ["REP104", "REP101", "REP101"]

    def test_select_narrows_rules(self):
        source = "import numpy as np\nimport random\nr = np.random.default_rng()\n"
        from repro.lint import normalize_selection

        only_104 = normalize_selection(["REP104"], None)
        findings = lint_source(source, "src/repro/sim/fixture.py", only_104)
        assert [f.rule for f in findings] == ["REP104"]


class TestCollectFiles:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no-such"):
            collect_files([tmp_path / "no-such"])

    def test_directories_expand_and_dedupe(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "b.txt").write_text("not python\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        files = collect_files([tmp_path / "pkg", tmp_path / "pkg" / "a.py"])
        assert files == [(tmp_path / "pkg" / "a.py").resolve()]


class TestProjectRuleGating:
    def test_registry_rule_runs_only_when_anchor_is_linted(self, tmp_path):
        # A path set that does not cover the registry anchor must not import
        # and cross-check the registry.
        module = tmp_path / "clean.py"
        module.write_text("x = 1\n")
        assert lint_paths([module], root=tmp_path) == []

    def test_repo_wide_run_includes_capability_check(self):
        root = repo_root()
        findings = lint_paths(
            [root / "src" / "repro" / "protocols"],
            select=["REP107"],
            root=root,
        )
        assert findings == [], "the live registry must satisfy its own metadata"


class TestCapabilityRule:
    def test_all_registry_entries_are_validated_clean(self):
        from repro.protocols import PROTOCOLS

        rule = CapabilityMetadataRule()
        assert len(PROTOCOLS) == 13
        assert list(rule.check_project(registry=PROTOCOLS)) == []

    def test_flag_without_kwarg_is_flagged(self):
        class Overclaiming:
            name = "overclaiming"
            supports_chunk_size = True
            supports_kernel = True

            def run(self, states, params, rng=None):
                return None

            def prepare(self, params, rng=None):
                return None

        rule = CapabilityMetadataRule()
        findings = list(rule.check_project(registry={"overclaiming": Overclaiming()}))
        messages = " | ".join(f.message for f in findings)
        assert "supports_chunk_size=True but run() does not accept" in messages
        assert "supports_kernel=True" in messages
        assert all(f.rule == "REP107" for f in findings)

    def test_hidden_capability_is_flagged(self):
        class Hiding:
            name = "hiding"
            supports_chunk_size = False
            supports_kernel = False

            def run(self, states, params, rng=None, *, chunk_size=None, kernel=None):
                return None

            def prepare(self, params, rng=None, *, kernel=None):
                return None

        rule = CapabilityMetadataRule()
        findings = list(rule.check_project(registry={"hiding": Hiding()}))
        messages = " | ".join(f.message for f in findings)
        assert "capability is hidden" in messages

    def test_registry_key_name_mismatch_is_flagged(self):
        class Misfiled:
            name = "real_name"
            supports_chunk_size = False
            supports_kernel = False

            def run(self, states, params, rng=None):
                return None

            def prepare(self, params, rng=None):
                return None

        rule = CapabilityMetadataRule()
        findings = list(rule.check_project(registry={"wrong_key": Misfiled()}))
        assert any("disagrees with protocol.name" in f.message for f in findings)


class TestRepoIsClean:
    def test_repo_lints_clean_modulo_baseline(self):
        # The meta-test the issue asks for: `repro lint` over the default
        # path set must produce nothing beyond the checked-in baseline.
        root = repo_root()
        findings = lint_paths([root / "src" / "repro", root / "tests"], root=root)
        new, baselined, stale = Baseline.load(root / "lint-baseline.json").apply(
            findings
        )
        assert new == [], [f.render() for f in new]
        assert stale == [], "baseline entries whose findings were fixed must be pruned"
        assert all(f.rule == "REP102" for f in baselined)

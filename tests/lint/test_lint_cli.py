"""The ``repro lint`` CLI surface: exit codes, formats, baselines, errors."""

from __future__ import annotations

import json

from repro.cli import build_parser, main
from repro.lint.cli import LINT_REPORT_SCHEMA

BAD_SOURCE = "import numpy as np\nrng = np.random.default_rng()\n"


def write_bad_module(tmp_path):
    # The engine falls back to absolute paths for files outside the repo, so
    # scoped rules would skip them; REP101's scope is matched via an
    # in-repo-looking layout only when linting repo files.  Universal rules
    # (REP103) apply anywhere, so fixtures use those.
    module = tmp_path / "fixture.py"
    module.write_text("key = hash(('name', 3))\n")
    return module


class TestExitCodes:
    def test_clean_file_exits_0(self, tmp_path, capsys):
        module = tmp_path / "ok.py"
        module.write_text("x = 1\n")
        assert main(["lint", str(module)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_1(self, tmp_path, capsys):
        module = write_bad_module(tmp_path)
        assert main(["lint", str(module)]) == 1
        out = capsys.readouterr().out
        assert "REP103" in out and "hint:" in out

    def test_missing_path_exits_2(self, capsys):
        assert main(["lint", "definitely/not/a/path.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        module = write_bad_module(tmp_path)
        assert main(["lint", str(module), "--select", "REP999"]) == 2
        error = capsys.readouterr().err
        assert "unknown rule" in error and "REP101" in error

    def test_repo_default_paths_exit_0_modulo_baseline(self, capsys):
        # The shipped tree must be lint-clean: same invocation CI runs.
        assert main(["lint"]) == 0


class TestSelection:
    def test_ignore_suppresses_the_rule(self, tmp_path):
        module = write_bad_module(tmp_path)
        assert main(["lint", str(module), "--ignore", "REP103"]) == 0

    def test_select_by_slug(self, tmp_path):
        module = write_bad_module(tmp_path)
        assert main(["lint", str(module), "--select", "hash-seed-taint"]) == 1
        assert main(["lint", str(module), "--select", "set-order"]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP101", "REP107", "REP108"):
            assert rule_id in out
        assert "fix:" in out


class TestJsonOutput:
    def test_json_schema(self, tmp_path, capsys):
        module = write_bad_module(tmp_path)
        assert main(["lint", str(module), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == LINT_REPORT_SCHEMA
        assert payload["tool"] == "repro lint"
        assert payload["counts"]["new"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule", "slug", "path", "line", "column",
            "message", "hint", "fingerprint",
        }
        assert finding["rule"] == "REP103"

    def test_out_writes_report_file(self, tmp_path, capsys):
        module = write_bad_module(tmp_path)
        report = tmp_path / "sub" / "lint-report.json"
        assert main(["lint", str(module), "--out", str(report)]) == 1
        payload = json.loads(report.read_text())
        assert payload["counts"]["new"] == 1


class TestBaselineFlow:
    def test_update_baseline_then_clean_then_stale(self, tmp_path, capsys):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"

        assert main(
            ["lint", str(module), "--update-baseline", "--baseline", str(baseline)]
        ) == 0
        assert baseline.exists()
        capsys.readouterr()

        # Absorbed: exit 0, but still visible in the report.
        assert main(["lint", str(module), "--baseline", str(baseline)]) == 0
        assert "baselined finding" in capsys.readouterr().out

        # --no-baseline brings the finding back.
        assert main(
            ["lint", str(module), "--baseline", str(baseline), "--no-baseline"]
        ) == 1
        capsys.readouterr()

        # Fix the violation: the entry goes stale (visible, non-blocking).
        module.write_text("x = 1\n")
        assert main(["lint", str(module), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out


class TestParser:
    def test_lint_subcommand_registered(self):
        args = build_parser().parse_args(["lint", "--format", "json"])
        assert args.command == "lint"
        assert args.format == "json"
        assert not args.paths

"""Property tests: invariants every kernel backend must satisfy.

For *any* registered backend, any family, and any valid ternary input:

* ``randomize_matrix`` outputs are exactly ``{-1, +1}`` int8 of the input
  shape (Property I's support requirement);
* batched ``R~(1^k)`` row distances always land inside the support of the
  law's exact distance pmf (inside the annulus, or in the uniform-outside
  complement — never at a zero-mass distance);
* sparsity violations and malformed entries are rejected identically.

Plus the fast-specific structural invariant: chunked and monolithic
``run_batch`` under the fast kernel agree bit-for-bit inside one seed block
(the chunked contract holds per backend).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annulus import AnnulusLaw
from repro.core.future_rand import FutureRandFamily
from repro.core.params import ProtocolParams
from repro.core.simple_randomizer import SimpleRandomizerFamily
from repro.core.vectorized import run_batch
from repro.kernels import available_kernels, get_kernel
from repro.sim.chunked import protocol_block_seeds, run_batch_chunked
from repro.workloads.generators import BoundedChangePopulation

KERNELS = available_kernels()


def _sparse_matrix(users: int, length: int, k: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    matrix = np.zeros((users, length), dtype=np.int8)
    for row in range(users):
        nonzeros = int(rng.integers(0, min(k, length) + 1))
        columns = rng.choice(length, size=nonzeros, replace=False)
        matrix[row, columns] = rng.choice([-1, 1], size=nonzeros)
    return matrix


@settings(max_examples=25, deadline=None)
@given(
    users=st.integers(min_value=0, max_value=40),
    length=st.integers(min_value=1, max_value=24),
    k=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    kernel=st.sampled_from(KERNELS),
    family_type=st.sampled_from([FutureRandFamily, SimpleRandomizerFamily]),
)
def test_randomize_matrix_outputs_are_signs(
    users, length, k, seed, kernel, family_type
):
    family = family_type(k, 1.0)
    matrix = _sparse_matrix(users, length, k, seed)
    output = family.randomize_matrix(
        matrix, np.random.default_rng(seed + 1), kernel=kernel
    )
    assert output.shape == matrix.shape
    assert output.dtype == np.int8
    assert set(np.unique(output)) <= {-1, 1}


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=24),
    epsilon=st.sampled_from([0.25, 1.0, 4.0]),
    count=st.integers(min_value=0, max_value=200),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    kernel=st.sampled_from(KERNELS),
)
def test_batch_distances_inside_law_support(k, epsilon, count, seed, kernel):
    law = AnnulusLaw.for_future_rand(k, epsilon)
    b = np.ones(k, dtype=np.int8)
    draws = get_kernel(kernel).sample_composed_batch(
        law, b, count, np.random.default_rng(seed)
    )
    assert draws.shape == (count, k)
    distances = (draws != b[np.newaxis, :]).sum(axis=1)
    support = law.distance_pmf() > 0
    assert support[distances].all(), (
        f"{kernel} kernel produced a zero-mass distance at k={k}, "
        f"eps={epsilon}"
    )


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "family_type", [FutureRandFamily, SimpleRandomizerFamily]
)
def test_sparsity_violation_rejected(kernel, family_type):
    family = family_type(2, 1.0)
    matrix = np.ones((4, 8), dtype=np.int8)  # 8 non-zeros per row, k=2
    with pytest.raises(ValueError, match="non-zero values"):
        family.randomize_matrix(matrix, np.random.default_rng(0), kernel=kernel)


@pytest.mark.parametrize("kernel", KERNELS)
def test_non_ternary_entries_rejected(kernel):
    family = FutureRandFamily(4, 1.0)
    matrix = np.full((3, 8), 2, dtype=np.int8)
    with pytest.raises(ValueError, match="must all be in"):
        family.randomize_matrix(matrix, np.random.default_rng(0), kernel=kernel)
    floats = np.full((3, 8), 0.5)
    with pytest.raises(ValueError, match="must all be in"):
        family.randomize_matrix(floats, np.random.default_rng(0), kernel=kernel)


@pytest.mark.parametrize("kernel", KERNELS)
def test_float_valued_ternary_entries_accepted(kernel):
    """Exact -1.0/0.0/1.0 floats are valid input for every backend."""
    family = FutureRandFamily(4, 1.0)
    matrix = np.zeros((5, 8), dtype=np.float64)
    matrix[:, 1] = 1.0
    matrix[:, 6] = -1.0
    output = family.randomize_matrix(matrix, np.random.default_rng(0), kernel=kernel)
    assert set(np.unique(output)) <= {-1, 1}


@settings(max_examples=15, deadline=None)
@given(
    log_d=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=1, max_value=3),
    n=st.integers(min_value=1, max_value=50),
    workload_seed=st.integers(min_value=0, max_value=2**32 - 1),
    protocol_seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk_size=st.sampled_from([1, 7, 23, 64]),
)
def test_fast_chunked_equals_fast_monolithic_single_block(
    log_d, k, n, workload_seed, protocol_seed, chunk_size
):
    """Chunk-size invariance holds under the fast kernel, bit for bit."""
    d = 1 << log_d
    k = min(k, d)
    params = ProtocolParams(n=n, d=d, k=k, epsilon=1.0)
    states = BoundedChangePopulation(d, k, start_prob=0.25).sample(
        n, np.random.default_rng(workload_seed)
    )
    (child,) = protocol_block_seeds(protocol_seed, n, block_rows=128)
    monolithic = run_batch(
        states, params, np.random.default_rng(child), kernel="fast"
    )
    chunked = run_batch_chunked(
        states,
        params,
        protocol_seed,
        chunk_size=chunk_size,
        block_rows=128,
        kernel="fast",
    )
    np.testing.assert_array_equal(monolithic.estimates, chunked.estimates)

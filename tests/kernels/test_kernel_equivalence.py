"""Backend equivalence: reference is bit-exact, fast is law-equal.

Three layers of guarantee, mirroring the seeding contract in
:mod:`repro.kernels`:

1. ``kernel="reference"`` consumes the generator byte-for-byte like
   ``kernel=None`` at every seam (sampler, families, batch drivers, chunked
   accumulator, streaming session, trial runner) — the frozen references
   stay valid under explicit backend naming;
2. the fast kernel is deterministic given a seed, and invariant under the
   chunked/monolithic split in distribution (checked statistically);
3. the runner layer records the kernel in artifact keys only when
   non-default, and rejects kernels on non-kernel-aware protocols.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.calibration import CalibratedFutureRandFamily
from repro.baselines.bun_composed import BunComposedFamily
from repro.core.annulus import AnnulusLaw
from repro.core.composed_randomizer import ComposedRandomizer
from repro.core.future_rand import FutureRandFamily
from repro.core.params import ProtocolParams
from repro.core.simple_randomizer import SimpleRandomizerFamily
from repro.core.vectorized import collect_tree_reports, run_batch
from repro.protocols import get_protocol
from repro.sim.batch_engine import run_batch_engine
from repro.sim.runner import _params_payload, run_trials, sweep
from repro.workloads.generators import BoundedChangePopulation

PARAMS = ProtocolParams(n=600, d=32, k=3, epsilon=1.0)

FAMILIES = [
    FutureRandFamily(3, 1.0),
    BunComposedFamily(3, 1.0),
    CalibratedFutureRandFamily(3, 1.0),
    SimpleRandomizerFamily(3, 1.0),
]


@pytest.fixture(scope="module")
def states():
    return BoundedChangePopulation(PARAMS.d, PARAMS.k, exact_k=True).sample(
        PARAMS.n, np.random.default_rng(0)
    )


class TestReferenceBitIdentity:
    """``kernel="reference"`` == ``kernel=None``, byte for byte."""

    def test_sample_batch(self):
        law = AnnulusLaw.for_future_rand(6, 1.0)
        sampler = ComposedRandomizer(law)
        b = np.ones(6, dtype=np.int8)
        default = sampler.sample_batch(b, 500, np.random.default_rng(1))
        named = sampler.sample_batch(
            b, 500, np.random.default_rng(1), kernel="reference"
        )
        np.testing.assert_array_equal(default, named)

    @pytest.mark.parametrize(
        "family", FAMILIES, ids=[family.name for family in FAMILIES]
    )
    def test_randomize_matrix(self, family):
        matrix = np.zeros((200, 16), dtype=np.int8)
        matrix[:, 2] = 1
        matrix[:, 9] = -1
        default = family.randomize_matrix(matrix, np.random.default_rng(2))
        named = family.randomize_matrix(
            matrix, np.random.default_rng(2), kernel="reference"
        )
        np.testing.assert_array_equal(default, named)

    def test_collect_tree_reports(self, states):
        default = collect_tree_reports(states, PARAMS, np.random.default_rng(3))
        named = collect_tree_reports(
            states, PARAMS, np.random.default_rng(3), kernel="reference"
        )
        for left, right in zip(default.node_sums, named.node_sums, strict=True):
            np.testing.assert_array_equal(left, right)
        np.testing.assert_array_equal(default.orders, named.orders)

    def test_run_batch_engine(self, states):
        default = run_batch_engine(states, PARAMS, np.random.default_rng(4))
        named = run_batch_engine(
            states, PARAMS, np.random.default_rng(4), kernel="reference"
        )
        np.testing.assert_array_equal(default.estimates, named.estimates)

    def test_run_batch_engine_chunked(self, states):
        default = run_batch_engine(
            states, PARAMS, np.random.default_rng(5), chunk_size=100
        )
        named = run_batch_engine(
            states,
            PARAMS,
            np.random.default_rng(5),
            chunk_size=100,
            kernel="reference",
        )
        np.testing.assert_array_equal(default.estimates, named.estimates)

    def test_streaming_session(self, states):
        protocol = get_protocol("future_rand")
        results = []
        for kernel in (None, "reference"):
            session = protocol.prepare(
                PARAMS, np.random.default_rng(6), kernel=kernel
            )
            for t in range(1, PARAMS.d + 1):
                session.ingest(t, states[:, t - 1])
            results.append(session.result())
        np.testing.assert_array_equal(results[0].estimates, results[1].estimates)

    def test_run_trials(self, states):
        default = run_trials(None, states, PARAMS, trials=2, seed=11)
        named = run_trials(
            None, states, PARAMS, trials=2, seed=11, kernel="reference"
        )
        assert default == named


class TestFastKernelDeterminism:
    def test_same_seed_same_output(self, states):
        first = run_batch(states, PARAMS, np.random.default_rng(7), kernel="fast")
        second = run_batch(states, PARAMS, np.random.default_rng(7), kernel="fast")
        np.testing.assert_array_equal(first.estimates, second.estimates)

    def test_streaming_matches_one_shot_distributionally(self, states):
        """Fast-kernel session runs end-to-end and produces sane estimates."""
        protocol = get_protocol("future_rand")
        session = protocol.prepare(PARAMS, np.random.default_rng(8), kernel="fast")
        for t in range(1, PARAMS.d + 1):
            session.ingest(t, states[:, t - 1])
        result = session.result()
        assert result.estimates.shape == (PARAMS.d,)
        assert np.isfinite(result.estimates).all()


class TestChunkedFastAgreement:
    """Chunked vs monolithic under the fast kernel: same law, both sane.

    Bit-identity is *not* promised across the chunk boundary change (the
    two consume different streams); instead both must track the true counts
    within the same statistical envelope.
    """

    @pytest.mark.parametrize("chunk_size", [None, 97])
    def test_error_within_envelope(self, states, chunk_size):
        from repro.analysis.bounds import hoeffding_radius

        family = FutureRandFamily(PARAMS.k, PARAMS.epsilon)
        bound = hoeffding_radius(PARAMS, family.c_gap, PARAMS.beta / PARAMS.d)
        worst = max(
            run_batch(
                states,
                PARAMS,
                np.random.default_rng(100 + trial),
                chunk_size=chunk_size,
                kernel="fast",
            ).max_abs_error
            for trial in range(3)
        )
        assert worst <= bound

    def test_chunk_size_invariance_fast(self, states):
        """Fast-kernel chunked runs are bit-identical across chunk sizes."""
        baseline = run_batch(
            states, PARAMS, np.random.default_rng(9), chunk_size=600, kernel="fast"
        )
        for chunk_size in (1, 97, 600, 10_000):
            result = run_batch(
                states,
                PARAMS,
                np.random.default_rng(9),
                chunk_size=chunk_size,
                kernel="fast",
            )
            np.testing.assert_array_equal(baseline.estimates, result.estimates)


class TestRunnerPlumbing:
    def test_artifact_key_omits_default_kernel(self):
        assert "kernel" not in _params_payload(PARAMS)
        assert "kernel" not in _params_payload(PARAMS, kernel="reference")
        assert "kernel" not in _params_payload(PARAMS, kernel=None)

    def test_artifact_key_records_non_default_kernel(self):
        payload = _params_payload(PARAMS, kernel="fast")
        assert payload["kernel"] == "fast"
        from repro.kernels import get_kernel

        assert _params_payload(PARAMS, kernel=get_kernel("fast"))["kernel"] == "fast"

    def test_run_trials_fast_kernel(self, states):
        statistics = run_trials(
            None, states, PARAMS, trials=2, seed=5, kernel="fast"
        )
        assert statistics.trials == 2
        assert np.isfinite(statistics.mean_max_abs)

    def test_run_trials_rejects_kernel_unaware_runner(self, states):
        with pytest.raises(ValueError, match="does not support kernel"):
            run_trials(
                "erlingsson", states, PARAMS, trials=1, seed=0, kernel="fast"
            )

    def test_run_trials_rejects_unknown_kernel(self, states):
        with pytest.raises(KeyError, match="unknown kernel"):
            run_trials(None, states, PARAMS, trials=1, seed=0, kernel="turbo")

    def test_sweep_fast_kernel_reproducible(self):
        tables = [
            sweep(
                ["future_rand", "bun_composed"],
                PARAMS,
                "k",
                [2, 3],
                trials=1,
                seed=3,
                kernel="fast",
            )
            for _ in range(2)
        ]
        assert tables[0].rows == tables[1].rows

    def test_sweep_fast_kernel_store_resume(self, tmp_path):
        from repro.sim.store import ResultStore

        store = ResultStore(tmp_path)
        common = dict(trials=1, seed=3, store=store, kernel="fast")
        first = sweep(None, PARAMS, "k", [2], **common)
        shards = store.shard_count()
        assert shards > 0
        resumed = sweep(None, PARAMS, "k", [2], **common)
        assert store.shard_count() == shards  # nothing recomputed
        assert first.rows == resumed.rows
        for body in store.iter_shards():
            assert body["key"]["params"]["kernel"] == "fast"

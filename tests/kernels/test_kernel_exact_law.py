"""Exact-law conformance of the fast kernel: provably the same distribution.

The fast backend does not reuse the reference sampling strategy, so "looks
close" is not enough — these tests pin it to the *closed-form* law:

* the empirical flip-**distance** histogram of ``R~(1^k)`` draws must match
  :meth:`AnnulusLaw.distance_pmf` within a total-variation bound, across a
  k/epsilon grid covering the paper's law, the exactly-calibrated law
  (annulus truncated so hard that the uniform-outside branch dominates) and
  the degenerate Bun laws where the annulus covers every distance and the
  outside branch vanishes entirely;
* given the distance, the flipped subset must be **uniform** — checked via
  per-coordinate flip frequencies (exchangeability makes them equal) and via
  exact subset sizes from the partial Fisher–Yates;
* the raw-bit uniform-sign stream must be unbiased.

All checks run at fixed seeds: a failure is a code regression, not an
unlucky draw.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.calibration import calibrated_law
from repro.baselines.bun_composed import bun_annulus_law
from repro.core.annulus import AnnulusLaw
from repro.kernels import get_kernel

#: (label, law) grid; includes the degenerate uniform-outside modes.
LAWS = [
    ("future_rand_k4", AnnulusLaw.for_future_rand(4, 1.0)),
    ("future_rand_k8", AnnulusLaw.for_future_rand(8, 0.5)),
    ("future_rand_k16", AnnulusLaw.for_future_rand(16, 2.0)),
    ("calibrated_k8", calibrated_law(8, 1.0)),  # outside branch dominates
    ("bun_k4_degenerate", bun_annulus_law(4, 1.0)),  # complement empty
    ("bun_k16", bun_annulus_law(16, 1.0)),
]

_DRAWS = 40_000


def _tv_bound(k: int, draws: int) -> float:
    """A generous deterministic TV envelope for ``draws`` samples, ``k+1`` bins.

    E[TV] <= sqrt((k+1) / (4 * draws)) for any pmf (Cauchy–Schwarz on the
    per-bin binomial deviations); 4x that is far beyond any plausible seed's
    fluctuation while still catching a systematically wrong law.
    """
    return 4.0 * np.sqrt((k + 1) / (4.0 * draws))


def _empirical_distance_pmf(kernel_name: str, law, seed: int) -> np.ndarray:
    kernel = get_kernel(kernel_name)
    b = np.ones(law.k, dtype=np.int8)
    draws = kernel.sample_composed_batch(law, b, _DRAWS, np.random.default_rng(seed))
    assert draws.shape == (_DRAWS, law.k)
    assert draws.dtype == np.int8
    assert set(np.unique(draws)) <= {-1, 1}
    distances = (draws != b[np.newaxis, :]).sum(axis=1)
    return np.bincount(distances, minlength=law.k + 1) / _DRAWS


@pytest.mark.parametrize("kernel_name", ["fast", "reference"])
@pytest.mark.parametrize("label,law", LAWS, ids=[label for label, _ in LAWS])
def test_distance_histogram_matches_exact_pmf(kernel_name, label, law):
    """TV(empirical distances, AnnulusLaw.distance_pmf) below the envelope."""
    empirical = _empirical_distance_pmf(kernel_name, law, seed=1234)
    pmf = law.distance_pmf()
    tv = 0.5 * np.abs(empirical - pmf).sum()
    assert tv <= _tv_bound(law.k, _DRAWS), (
        f"{kernel_name} kernel TV {tv:.4f} exceeds "
        f"{_tv_bound(law.k, _DRAWS):.4f} for {label}"
    )


@pytest.mark.parametrize("label,law", LAWS, ids=[label for label, _ in LAWS])
def test_distances_stay_inside_pmf_support(label, law):
    """No fast-kernel draw lands at a distance the law gives zero mass."""
    empirical = _empirical_distance_pmf("fast", law, seed=99)
    support = law.distance_pmf() > 0
    assert (empirical[~support] == 0).all(), (
        f"fast kernel produced distances outside the support for {label}"
    )


@pytest.mark.parametrize("label,law", LAWS, ids=[label for label, _ in LAWS])
def test_flipped_subsets_are_exchangeable(label, law):
    """Per-coordinate flip frequencies are equal (uniform-subset evidence).

    Under the exact law every coordinate flips with probability
    ``E[distance] / k``; a biased Fisher–Yates (off-by-one ranges, stale
    permutation scratch) shows up here immediately.
    """
    kernel = get_kernel("fast")
    b = np.ones(law.k, dtype=np.int8)
    draws = kernel.sample_composed_batch(law, b, _DRAWS, np.random.default_rng(7))
    pmf = law.distance_pmf()
    expected = float((pmf * np.arange(law.k + 1)).sum()) / law.k
    per_coordinate = (draws == -1).mean(axis=0)
    # Hoeffding at 40k draws: 5 sigma ~ 0.0125; use a flat generous margin.
    tolerance = 5.0 * np.sqrt(0.25 / _DRAWS)
    assert np.abs(per_coordinate - expected).max() <= tolerance, (
        f"coordinate flip frequencies {per_coordinate} deviate from "
        f"{expected:.4f} for {label}"
    )


def test_fast_sampler_respects_general_b():
    """``R~(b)`` for non-ones ``b``: flip pattern applied relative to ``b``."""
    law = AnnulusLaw.for_future_rand(8, 1.0)
    kernel = get_kernel("fast")
    b = np.array([1, -1, 1, -1, 1, -1, 1, -1], dtype=np.int8)
    draws = kernel.sample_composed_batch(law, b, 20_000, np.random.default_rng(3))
    distances = (draws != b[np.newaxis, :]).sum(axis=1)
    pmf = law.distance_pmf()
    tv = 0.5 * np.abs(np.bincount(distances, minlength=9) / 20_000 - pmf).sum()
    assert tv <= _tv_bound(8, 20_000)


def test_fast_subset_sizes_are_exact():
    """The partial Fisher–Yates flips exactly ``size`` distinct positions."""
    kernel = get_kernel("fast")
    rng = np.random.default_rng(11)
    sizes = np.array([0, 1, 3, 7, 12, 12, 5, 0, 2, 9])
    rows, columns = kernel._uniform_subset_indices(10, 12, sizes, rng)
    assert rows.size == sizes.sum()
    for row in range(10):
        chosen = columns[rows == row]
        assert chosen.size == sizes[row]
        assert np.unique(chosen).size == sizes[row], "duplicate flip position"
        assert ((chosen >= 0) & (chosen < 12)).all()


def test_fast_subset_positions_are_uniform():
    """Each position is chosen with probability size/k (marginal uniformity)."""
    kernel = get_kernel("fast")
    rng = np.random.default_rng(5)
    count, k, size = 30_000, 10, 3
    sizes = np.full(count, size)
    rows, columns = kernel._uniform_subset_indices(count, k, sizes, rng)
    frequency = np.bincount(columns, minlength=k) / count
    assert np.abs(frequency - size / k).max() <= 5.0 * np.sqrt(0.25 / count)


def test_uniform_signs_unbiased_and_exactly_binary():
    kernel = get_kernel("fast")
    signs = kernel.uniform_signs((100_000,), np.random.default_rng(17))
    assert set(np.unique(signs)) == {-1, 1}
    assert abs(float(signs.mean())) <= 5.0 * np.sqrt(1.0 / 100_000)


def test_alias_table_matches_pmf():
    from repro.kernels import AliasTable

    pmf = np.array([0.05, 0.4, 0.05, 0.3, 0.2])
    table = AliasTable(pmf)
    draws = table.sample(200_000, np.random.default_rng(2))
    empirical = np.bincount(draws, minlength=5) / 200_000
    assert np.abs(empirical - pmf).max() <= 0.01


def test_alias_table_rejects_bad_pmf():
    from repro.kernels import AliasTable

    with pytest.raises(ValueError, match="non-empty"):
        AliasTable(np.array([]))
    with pytest.raises(ValueError, match="non-negative"):
        AliasTable(np.array([0.5, -0.5, 1.0]))
    with pytest.raises(ValueError, match="positive total"):
        AliasTable(np.array([0.0, 0.0]))
    with pytest.raises(ValueError, match="non-negative"):
        AliasTable(np.array([np.inf, 1.0]))


def test_alias_table_degenerate_single_outcome():
    from repro.kernels import AliasTable

    table = AliasTable(np.array([1.0]))
    assert (table.sample(100, np.random.default_rng(0)) == 0).all()

"""Registry contract for the kernel backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    DEFAULT_KERNEL,
    KERNELS,
    FastKernel,
    RandomizerKernel,
    ReferenceKernel,
    available_kernels,
    get_kernel,
    register_kernel,
    resolve_kernel,
)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_kernels() == ["fast", "reference"]
        assert isinstance(get_kernel("reference"), ReferenceKernel)
        assert isinstance(get_kernel("fast"), FastKernel)

    def test_default_kernel_is_reference(self):
        assert DEFAULT_KERNEL == "reference"
        assert DEFAULT_KERNEL in KERNELS

    def test_unknown_kernel_raises_with_known_names(self):
        with pytest.raises(KeyError, match="unknown kernel 'turbo'.*fast"):
            get_kernel("turbo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel(ReferenceKernel())

    def test_overwrite_allows_replacement(self):
        original = get_kernel("reference")
        try:
            replacement = ReferenceKernel()
            register_kernel(replacement, overwrite=True)
            assert get_kernel("reference") is replacement
        finally:
            register_kernel(original, overwrite=True)

    def test_register_rejects_non_kernel(self):
        with pytest.raises(TypeError, match="RandomizerKernel"):
            register_kernel("fast")


class TestResolveKernel:
    def test_none_passes_through(self):
        assert resolve_kernel(None) is None

    def test_name_resolves(self):
        assert resolve_kernel("fast") is get_kernel("fast")

    def test_instance_passes_through(self):
        kernel = get_kernel("fast")
        assert resolve_kernel(kernel) is kernel

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="cannot resolve"):
            resolve_kernel(42)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            resolve_kernel("nope")


class TestKernelSurface:
    @pytest.mark.parametrize("name", ["reference", "fast"])
    def test_uniform_signs_shape_dtype_and_values(self, name):
        kernel = get_kernel(name)
        signs = kernel.uniform_signs((123, 7), np.random.default_rng(0))
        assert signs.shape == (123, 7)
        assert signs.dtype == np.int8
        assert set(np.unique(signs)) <= {-1, 1}

    @pytest.mark.parametrize("name", ["reference", "fast"])
    def test_uniform_signs_empty(self, name):
        kernel = get_kernel(name)
        signs = kernel.uniform_signs((0, 5), np.random.default_rng(0))
        assert signs.shape == (0, 5)

    def test_repr_names_backend(self):
        assert "fast" in repr(get_kernel("fast"))

    def test_abstract_interface(self):
        assert issubclass(FastKernel, RandomizerKernel)
        with pytest.raises(TypeError):
            RandomizerKernel()

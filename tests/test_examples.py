"""Smoke tests for the example scripts: they must compile and expose main().

The examples simulate millions of users (documented deliberately — see
EXPERIMENTS.md observation 3), so executing them is left to humans/CI jobs;
these tests catch syntax errors, broken imports and missing entry points.
"""

from __future__ import annotations

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable: at least three runnable examples


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda path: path.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    function_names = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    }
    assert "main" in function_names, f"{path.name} must define main()"
    has_guard = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    )
    assert has_guard, f"{path.name} must have an __main__ guard"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda path: path.name)
def test_example_imports_resolve(path):
    """Importing the module (without running main) must succeed."""
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)

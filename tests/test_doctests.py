"""Run the docstring examples of every public module as tests.

Keeps the documentation honest: a drifting API breaks the build, not just
the docs.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

MODULES_WITH_EXAMPLES = [
    "repro.utils.numerics",
    "repro.utils.rng",
    "repro.utils.chunking",
    "repro.dyadic.intervals",
    "repro.dyadic.derivative",
    "repro.dyadic.partial_sums",
    "repro.dyadic.tree",
    "repro.core.params",
    "repro.core.basic_randomizer",
    "repro.core.composed_randomizer",
    "repro.core.future_rand",
    "repro.core.client",
    "repro.kernels.alias",
    "repro.protocols.registry",
    "repro.sim.results",
    "repro.sim.runner",
    "repro.sim.engine",
    "repro.sim.batch_engine",
    "repro.workloads.generators",
    "repro.workloads.streams",
    "repro.extensions.categorical",
    "repro.extensions.hashed_frequency",
    "repro.extensions.heavy_hitters",
    "repro.extensions.sketch",
    "repro.postprocess.smoothing",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_EXAMPLES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"


def test_every_listed_module_actually_has_examples():
    """Guard against the list silently rotting."""
    missing = []
    for module_name in MODULES_WITH_EXAMPLES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder()
        examples = [t for t in finder.find(module) if t.examples]
        if not examples:
            missing.append(module_name)
    assert not missing, f"modules without doctest examples: {missing}"

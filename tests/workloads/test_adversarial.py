"""Tests for adversarial workload generators + protocol robustness on them."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import hoeffding_radius
from repro.core.params import ProtocolParams
from repro.core.vectorized import run_batch
from repro.workloads.adversarial import (
    boundary_aligned,
    boundary_misaligned,
    full_budget_oscillation,
    synchronized_spike,
)


def _changes(states: np.ndarray) -> np.ndarray:
    return np.count_nonzero(np.diff(states, axis=1, prepend=0), axis=1)


class TestGenerators:
    def test_spike_shape_and_truth(self):
        states = synchronized_spike(100, 32, flip_time=9)
        assert states.shape == (100, 32)
        counts = states.sum(axis=0)
        assert counts[7] == 0 and counts[8] == 100

    def test_spike_single_change(self):
        states = synchronized_spike(10, 16, flip_time=1)
        assert (_changes(states) == 1).all()

    def test_spike_validation(self):
        with pytest.raises(ValueError):
            synchronized_spike(10, 16, flip_time=17)

    def test_boundary_aligned_changes_on_boundaries(self):
        states = boundary_aligned(5, 64, k=3)
        deriv = np.diff(states[0], prepend=0)
        for t in np.flatnonzero(deriv) + 1:
            assert t in (8, 16, 32)

    def test_boundary_misaligned_changes_off_boundaries(self):
        states = boundary_misaligned(5, 64, k=3)
        deriv = np.diff(states[0], prepend=0)
        for t in np.flatnonzero(deriv) + 1:
            assert t in (9, 17, 33)

    def test_budget_respected(self):
        for factory in (boundary_aligned, boundary_misaligned):
            states = factory(20, 64, 4)
            assert _changes(states).max() <= 4

    def test_oscillation_uses_full_budget(self, rng):
        states = full_budget_oscillation(30, 32, k=5, rng=rng)
        assert (_changes(states) == 5).all()

    def test_oscillation_changes_consecutive(self, rng):
        states = full_budget_oscillation(10, 32, k=4, rng=rng)
        for row in states:
            nonzeros = np.flatnonzero(np.diff(row, prepend=0))
            assert nonzeros.max() - nonzeros.min() == 3

    def test_oscillation_validation(self, rng):
        with pytest.raises(ValueError):
            full_budget_oscillation(10, 8, k=9, rng=rng)


class TestProtocolRobustness:
    """The error guarantee is workload-independent; adversarial inputs must
    stay within the same radius as benign ones."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda n, d, k: synchronized_spike(n, d, d // 2),
            boundary_aligned,
            boundary_misaligned,
            lambda n, d, k: full_budget_oscillation(n, d, k, np.random.default_rng(0)),
        ],
    )
    def test_error_within_radius(self, factory):
        params = ProtocolParams(n=500, d=32, k=4, epsilon=1.0)
        states = factory(params.n, params.d, params.k)
        result = run_batch(states, params, np.random.default_rng(1))
        radius = hoeffding_radius(params, result.c_gap, params.beta / params.d)
        assert result.max_abs_error <= radius

    def test_alignment_does_not_matter_statistically(self):
        """Aligned vs misaligned change times give comparable error."""
        params = ProtocolParams(n=1000, d=64, k=3, epsilon=1.0)
        aligned_states = boundary_aligned(params.n, params.d, params.k)
        misaligned_states = boundary_misaligned(params.n, params.d, params.k)
        aligned_errors, misaligned_errors = [], []
        for trial in range(6):
            aligned_errors.append(
                run_batch(aligned_states, params, np.random.default_rng(trial)).max_abs_error
            )
            misaligned_errors.append(
                run_batch(
                    misaligned_states, params, np.random.default_rng(100 + trial)
                ).max_abs_error
            )
        ratio = np.mean(aligned_errors) / np.mean(misaligned_errors)
        assert 0.5 < ratio < 2.0

"""Property tests for the adversarial Population wrappers.

The :mod:`repro.fuzz` genome encoder builds its search space from these
wrappers, so the invariants the fuzzer assumes are pinned here: every sample
is a valid int8 {0,1} matrix spending at most ``k`` changes, and — because
each wrapper draws users i.i.d. — ``sample_chunks`` concatenates to exactly
``sample`` at any chunk size (the out-of-core contract every other
Population already satisfies).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import as_seed_sequence
from repro.workloads.adversarial import (
    BoundaryPopulation,
    OscillationPopulation,
    SpikePopulation,
)


def _changes(states: np.ndarray) -> np.ndarray:
    return (np.diff(states.astype(np.int16), axis=1) != 0).sum(axis=1)


def _wrappers(d: int, k: int):
    return [
        (SpikePopulation(d, flip_time=max(1, d // 2)), 1),
        (BoundaryPopulation(d, k, aligned=True), k),
        (BoundaryPopulation(d, k, aligned=False), k),
        (OscillationPopulation(d, k), k),
    ]


@settings(max_examples=30, deadline=None)
@given(
    log_d=st.integers(min_value=2, max_value=6),
    k=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_samples_are_budget_safe_boolean_matrices(log_d, k, n, seed):
    d = 1 << log_d
    k = min(k, d)
    for population, budget in _wrappers(d, k):
        states = population.sample(n, np.random.default_rng(seed))
        assert states.shape == (n, d)
        assert states.dtype == np.int8
        assert set(np.unique(states)) <= {0, 1}
        assert (_changes(states) <= budget).all()


@settings(max_examples=25, deadline=None)
@given(
    log_d=st.integers(min_value=2, max_value=5),
    k=st.integers(min_value=1, max_value=3),
    n=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk_size=st.sampled_from([1, 3, 7, 64]),
)
def test_sample_chunks_is_chunk_size_invariant(log_d, k, n, seed, chunk_size):
    """Concatenated chunks == one monolithic block draw, for any chunk size.

    With ``block_rows >= n`` there is a single seed block, drawn with a
    generator from the root's first spawn child — the same rows whether they
    are emitted in one piece or many.
    """
    d = 1 << log_d
    k = min(k, d)
    for population, _ in _wrappers(d, k):
        root = as_seed_sequence(seed, reset_spawn_counter=True)
        (child,) = root.spawn(1)
        monolithic = population.sample(n, np.random.default_rng(child))
        chunks = list(
            population.sample_chunks(n, chunk_size, seed, block_rows=128)
        )
        assert all(chunk.shape[0] <= chunk_size for chunk in chunks)
        np.testing.assert_array_equal(np.vstack(chunks), monolithic)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk_a=st.sampled_from([1, 5, 16]),
    chunk_b=st.sampled_from([3, 11, 80]),
)
def test_multi_block_chunking_agrees_across_chunk_sizes(seed, chunk_a, chunk_b):
    """Across multiple seed blocks, any two chunkings yield identical rows."""
    population = OscillationPopulation(16, 2)
    a = np.vstack(list(population.sample_chunks(70, chunk_a, seed, block_rows=32)))
    b = np.vstack(list(population.sample_chunks(70, chunk_b, seed, block_rows=32)))
    np.testing.assert_array_equal(a, b)


def test_deterministic_wrappers_ignore_the_generator():
    """Spike/boundary rows are parameter-only: any rng gives the same matrix."""
    for population in (
        SpikePopulation(16, flip_time=5),
        BoundaryPopulation(16, 2, aligned=True),
        BoundaryPopulation(16, 2, aligned=False),
    ):
        a = population.sample(9, np.random.default_rng(0))
        b = population.sample(9, np.random.default_rng(12345))
        np.testing.assert_array_equal(a, b)

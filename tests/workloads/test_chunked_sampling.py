"""Property tests: chunked population sampling is lossless and chunk-invariant.

The contract of ``Population.sample_chunks`` (the entry point of the
out-of-core pipeline): for a fixed ``(n, seed, block_rows)`` the concatenated
stream is bit-identical for *any* chunk size, and — because randomness is
attached to fixed user blocks — a single-block stream concatenates to exactly
the monolithic ``sample`` drawn from the first spawned child.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generators import (
    BoundedChangePopulation,
    ChurnPopulation,
    PeriodicPopulation,
    TrendPopulation,
)


def _make_population(kind: str, d: int, k: int):
    if kind.startswith("bounded-"):
        return BoundedChangePopulation(d, k, mode=kind.split("-", 1)[1])
    if kind.startswith("trend-"):
        return TrendPopulation(d, k, curve=kind.split("-", 1)[1])
    if kind == "periodic":
        return PeriodicPopulation(d, k)
    if kind == "churn":
        return ChurnPopulation(d, max(k, 2))
    raise AssertionError(kind)


_ALL_KINDS = [
    "bounded-uniform",
    "bounded-early",
    "bounded-late",
    "bounded-bursty",
    "trend-sigmoid",
    "trend-linear",
    "trend-spike",
    "periodic",
    "churn",
]


@pytest.mark.parametrize("kind", _ALL_KINDS)
def test_concatenates_to_monolithic_sample(kind):
    """One block => the stream equals ``sample`` seeded from the spawn child."""
    population = _make_population(kind, d=16, k=3)
    n, seed = 57, 1234
    chunks = list(population.sample_chunks(n, 10, seed, block_rows=n))
    assert sum(chunk.shape[0] for chunk in chunks) == n
    stream = np.concatenate(chunks)
    child = np.random.SeedSequence(seed).spawn(1)[0]
    monolithic = population.sample(n, np.random.default_rng(child))
    np.testing.assert_array_equal(stream, monolithic)


@settings(max_examples=30, deadline=None)
@given(
    kind=st.sampled_from(_ALL_KINDS),
    log_d=st.integers(min_value=1, max_value=5),
    k=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk_size=st.one_of(
        st.just(1), st.sampled_from([7, 13]), st.integers(min_value=61, max_value=80)
    ),
    block_rows=st.sampled_from([4, 17, 64]),
)
def test_chunk_size_never_changes_the_population(
    kind, log_d, k, n, seed, chunk_size, block_rows
):
    """Arbitrary chunk sizes (1, primes, > n) reproduce identical users."""
    d = 1 << log_d
    k = min(k, d)
    population = _make_population(kind, d, k)
    reference = np.concatenate(
        list(population.sample_chunks(n, n, seed, block_rows=block_rows))
    )
    assert reference.shape == (n, d)
    varied = np.concatenate(
        list(population.sample_chunks(n, chunk_size, seed, block_rows=block_rows))
    )
    np.testing.assert_array_equal(reference, varied)


@pytest.mark.parametrize("kind", ["bounded-uniform", "churn"])
def test_multi_block_stream_is_blockwise(kind):
    """Blocks are independent draws: block b equals sample() under child b."""
    population = _make_population(kind, d=8, k=2)
    n, block_rows, seed = 25, 10, 7
    stream = np.concatenate(list(population.sample_chunks(n, 6, seed, block_rows=block_rows)))
    children = np.random.SeedSequence(seed).spawn(3)
    expected = np.concatenate(
        [
            population.sample(rows, np.random.default_rng(child))
            for rows, child in zip((10, 10, 5), children, strict=True)
        ]
    )
    np.testing.assert_array_equal(stream, expected)


def test_rejects_bad_chunk_size():
    population = BoundedChangePopulation(8, 2)
    with pytest.raises(ValueError, match="chunk_size"):
        list(population.sample_chunks(10, 0, 0))
    with pytest.raises(ValueError, match="n"):
        list(population.sample_chunks(0, 4, 0))


@settings(max_examples=20, deadline=None)
@given(
    kind=st.sampled_from(_ALL_KINDS),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_chunked_users_respect_the_change_budget(kind, seed):
    """Every streamed chunk is a valid bounded-change population slice."""
    d, k = 16, 3
    population = _make_population(kind, d, k)
    for chunk in population.sample_chunks(40, 9, seed, block_rows=16):
        assert chunk.dtype == np.int8
        assert ((chunk == 0) | (chunk == 1)).all()
        changes = np.count_nonzero(np.diff(chunk, axis=1, prepend=0), axis=1)
        assert changes.max(initial=0) <= max(k, 2 if kind == "churn" else k)

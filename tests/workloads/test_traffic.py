"""Unit tests for the traffic models and the arrival scheduler."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.workloads.traffic import (
    TRAFFIC_MODELS,
    ArrivalSchedule,
    TrafficModel,
    schedule_arrivals,
)


class TestTrafficModel:
    def test_defaults_are_fault_free(self):
        model = TrafficModel()
        assert not model.faulty
        assert model.name == "uniform"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"burst_factor": 0.5},
            {"late_rate": -0.1},
            {"late_rate": 1.0},
            {"duplicate_rate": 1.5},
            {"drop_rate": -0.01},
            {"max_lateness": 0},
            {"max_skew": -1},
        ],
        ids=lambda kwargs: next(iter(kwargs)),
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError, match=next(iter(kwargs))):
            TrafficModel(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"late_rate": 0.1},
            {"duplicate_rate": 0.1},
            {"drop_rate": 0.1},
            {"max_skew": 2},
        ],
        ids=lambda kwargs: next(iter(kwargs)),
    )
    def test_each_fault_knob_flips_faulty(self, kwargs):
        assert TrafficModel(**kwargs).faulty

    def test_burst_factor_alone_is_not_a_fault(self):
        """Bursts change arrival pacing, never delivery correctness."""
        assert not TrafficModel(burst_factor=8.0).faulty

    def test_with_rates_overrides_only_what_is_given(self):
        base = TrafficModel(name="soak", late_rate=0.05, duplicate_rate=0.01)
        bumped = base.with_rates(drop_rate=0.1)
        assert bumped.drop_rate == 0.1
        assert bumped.late_rate == base.late_rate
        assert bumped.duplicate_rate == base.duplicate_rate
        assert bumped.name == base.name

    def test_with_rates_without_overrides_is_identity(self):
        base = TrafficModel(name="soak", late_rate=0.05)
        assert base.with_rates() is base

    def test_model_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TrafficModel().late_rate = 0.5


class TestScheduleArrivals:
    def _emitted(self, horizon: int = 16, size: int = 400) -> np.ndarray:
        rng = np.random.default_rng(5)
        return rng.integers(1, horizon + 1, size=size)

    def test_fault_free_schedule_is_the_identity(self):
        emitted = self._emitted()
        schedule = schedule_arrivals(
            emitted, 16, TrafficModel(), np.random.default_rng(0)
        )
        assert np.array_equal(schedule.fold_period, emitted)
        assert np.array_equal(schedule.submit_period, emitted)
        assert not schedule.retransmit_period.any()
        assert schedule.dropped == schedule.late == schedule.duplicates == 0
        assert schedule.skew_buffered == 0
        assert schedule.delivered == emitted.size

    def test_fault_free_schedule_consumes_no_randomness(self):
        """Bit-compatibility: smooth traffic must not shift the rng stream."""
        rng = np.random.default_rng(42)
        untouched = np.random.default_rng(42)
        schedule_arrivals(self._emitted(), 16, TrafficModel(), rng)
        assert rng.bit_generator.state == untouched.bit_generator.state

    def test_faulty_schedule_invariants(self):
        emitted = self._emitted()
        horizon = 16
        traffic = TrafficModel(
            name="stress",
            late_rate=0.2,
            duplicate_rate=0.2,
            drop_rate=0.1,
            max_lateness=4,
            max_skew=3,
        )
        schedule = schedule_arrivals(
            emitted, horizon, traffic, np.random.default_rng(9)
        )
        fold = schedule.fold_period
        submit = schedule.submit_period
        resend = schedule.retransmit_period
        delivered = fold > 0
        # Folds happen at or after emission, never past the horizon.
        assert (fold[delivered] >= emitted[delivered]).all()
        assert (fold <= horizon).all()
        # Skewed submission precedes the fold but stays in [1, fold].
        assert (submit[delivered] >= 1).all()
        assert (submit[delivered] <= fold[delivered]).all()
        assert (submit[~delivered] == 0).all()
        # Retransmits only for delivered originals, strictly later.
        assert (resend[~delivered] == 0).all()
        resent = resend > 0
        assert (resend[resent] > fold[resent]).all()
        assert (resend <= horizon).all()
        # Counters agree with the arrays.
        assert schedule.dropped == int((~delivered).sum())
        assert schedule.delivered == int(delivered.sum())
        assert schedule.duplicates == int(resent.sum())
        assert schedule.skew_buffered == int(
            ((submit < fold) & delivered).sum()
        )
        assert schedule.late >= int((fold[delivered] > emitted[delivered]).sum())

    def test_same_rng_same_schedule(self):
        emitted = self._emitted()
        traffic = TRAFFIC_MODELS["soak"]
        first = schedule_arrivals(
            emitted, 16, traffic, np.random.default_rng(77)
        )
        second = schedule_arrivals(
            emitted, 16, traffic, np.random.default_rng(77)
        )
        for field in ("fold_period", "submit_period", "retransmit_period"):
            assert np.array_equal(getattr(first, field), getattr(second, field))

    def test_emitted_must_be_one_dimensional(self):
        with pytest.raises(ValueError, match="1-D"):
            schedule_arrivals(
                np.ones((2, 3), dtype=np.int64),
                16,
                TrafficModel(),
                np.random.default_rng(0),
            )

    def test_emitted_must_lie_within_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            schedule_arrivals(
                np.array([1, 17]), 16, TrafficModel(), np.random.default_rng(0)
            )

    def test_empty_block_schedules_cleanly(self):
        schedule = schedule_arrivals(
            np.array([], dtype=np.int64),
            16,
            TRAFFIC_MODELS["soak"],
            np.random.default_rng(0),
        )
        assert isinstance(schedule, ArrivalSchedule)
        assert schedule.delivered == 0


class TestRegistry:
    def test_names_match_keys(self):
        for key, model in TRAFFIC_MODELS.items():
            assert model.name == key

    def test_uniform_is_smooth_and_soak_is_faulty(self):
        assert not TRAFFIC_MODELS["uniform"].faulty
        assert TRAFFIC_MODELS["soak"].faulty
        # The acceptance workload stresses all three delivery seams.
        soak = TRAFFIC_MODELS["soak"]
        assert soak.burst_factor > 1
        assert soak.late_rate > 0
        assert soak.duplicate_rate > 0

"""Tests for the workload generators, scenarios and stream helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generators import (
    BoundedChangePopulation,
    ItemChangePopulation,
    PeriodicPopulation,
    TrendPopulation,
)
from repro.workloads.scenarios import (
    heavy_domain_scenario,
    telemetry_fleet_scenario,
    url_tracking_scenario,
)
from repro.workloads.streams import iterate_periods, population_counts


def _changes(states: np.ndarray) -> np.ndarray:
    return np.count_nonzero(np.diff(states, axis=1, prepend=0), axis=1)


class TestBoundedChangePopulation:
    def test_shape_and_domain(self, rng):
        states = BoundedChangePopulation(32, 4).sample(50, rng)
        assert states.shape == (50, 32)
        assert set(np.unique(states).tolist()) <= {0, 1}

    @given(
        st.sampled_from([8, 16, 32]),
        st.integers(min_value=1, max_value=6),
        st.sampled_from(["uniform", "early", "late", "bursty"]),
        st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_change_budget_respected(self, d, k, mode, exact):
        population = BoundedChangePopulation(
            d, k, mode=mode, start_prob=0.3, exact_k=exact
        )
        states = population.sample(25, np.random.default_rng(0))
        assert _changes(states).max() <= k

    def test_exact_k_uses_full_budget(self, rng):
        population = BoundedChangePopulation(64, 3, exact_k=True)
        states = population.sample(40, rng)
        assert (_changes(states) == 3).all()

    def test_start_prob_zero_starts_at_zero(self, rng):
        population = BoundedChangePopulation(16, 2)
        states = population.sample(200, rng)
        # Starting at 1 without a change at t=1 is impossible.
        assert (states[:, 0] == 1).mean() < 0.7  # changes at t=1 still allowed

    def test_start_prob_shifts_initial_state(self):
        low = BoundedChangePopulation(16, 3, start_prob=0.0)
        high = BoundedChangePopulation(16, 3, start_prob=0.8, exact_k=True)
        rng_low = np.random.default_rng(1)
        rng_high = np.random.default_rng(1)
        fraction_low = low.sample(300, rng_low)[:, 0].mean()
        fraction_high = high.sample(300, rng_high)[:, 0].mean()
        assert fraction_high > fraction_low + 0.3

    def test_bursty_changes_inside_window(self, rng):
        population = BoundedChangePopulation(64, 4, mode="bursty", burst_width=8, exact_k=True)
        states = population.sample(50, rng)
        deriv = np.diff(states, axis=1, prepend=0)
        for row in deriv:
            nonzeros = np.flatnonzero(row)
            if nonzeros.size > 1:
                assert nonzeros.max() - nonzeros.min() < 8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BoundedChangePopulation(12, 2)  # not a power of two
        with pytest.raises(ValueError):
            BoundedChangePopulation(8, 9)  # k > d
        with pytest.raises(ValueError):
            BoundedChangePopulation(8, 2, mode="weird")
        with pytest.raises(ValueError):
            BoundedChangePopulation(8, 4, mode="bursty", burst_width=2)
        with pytest.raises(ValueError):
            BoundedChangePopulation(8, 2, start_prob=1.5)

    def test_properties(self):
        population = BoundedChangePopulation(16, 3)
        assert population.d == 16
        assert population.k == 3


class TestItemChangePopulation:
    def test_shape_dtype_and_domain(self, rng):
        items = ItemChangePopulation(16, 3, 100).sample(60, rng)
        assert items.shape == (60, 16)
        assert items.dtype == np.int64
        assert items.min() >= 0 and items.max() < 100

    @given(
        st.sampled_from([8, 16, 32]),
        st.integers(min_value=1, max_value=6),
        st.sampled_from([4, 64, 1 << 12]),
    )
    @settings(max_examples=30, deadline=None)
    def test_change_budget_respected(self, d, k, m):
        items = ItemChangePopulation(d, k, m).sample(
            25, np.random.default_rng(0)
        )
        switches = np.count_nonzero(np.diff(items, axis=1), axis=1)
        assert switches.max() <= k

    def test_skew_concentrates_low_item_ids(self, rng):
        m = 1 << 10
        items = ItemChangePopulation(8, 2, m, skew=6.0).sample(500, rng)
        # With skew s the item CDF is (x/m)^(1/s): most mass sits low.
        assert (items < m // 4).mean() > 0.5

    def test_reproducible_and_chunked_path_agrees(self):
        population = ItemChangePopulation(16, 2, 256)
        a = population.sample(120, np.random.default_rng(7))
        b = population.sample(120, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
        coarse = np.concatenate(list(population.sample_chunks(120, 50, seed=3)))
        fine = np.concatenate(list(population.sample_chunks(120, 7, seed=3)))
        assert coarse.shape == (120, 16)
        np.testing.assert_array_equal(coarse, fine)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ItemChangePopulation(16, 2, 1)  # domain too small
        with pytest.raises(ValueError):
            ItemChangePopulation(16, 2, 64, skew=0.5)  # flattening skew
        with pytest.raises(ValueError):
            ItemChangePopulation(12, 2, 64)  # d not a power of two

    def test_properties(self):
        population = ItemChangePopulation(32, 4, 1 << 16, skew=2.0)
        assert population.d == 32
        assert population.k == 4
        assert population.domain_size == 1 << 16


class TestTrendPopulation:
    def test_budget_respected(self, rng):
        states = TrendPopulation(64, 4).sample(60, rng)
        assert _changes(states).max() <= 4

    def test_sigmoid_counts_ramp_up(self, rng):
        states = TrendPopulation(64, 6, curve="sigmoid").sample(800, rng)
        counts = states.sum(axis=0)
        assert counts[-1] > counts[0] + 200  # strong adoption by the end

    def test_spike_curve_peaks_early(self):
        curve = TrendPopulation(64, 4, curve="spike").target_curve()
        assert curve.argmax() < 32

    def test_linear_curve(self):
        curve = TrendPopulation(16, 2, curve="linear").target_curve()
        assert curve[0] == pytest.approx(1 / 16)
        assert curve[-1] == pytest.approx(1.0)

    def test_invalid_curve(self):
        with pytest.raises(ValueError):
            TrendPopulation(16, 2, curve="exp")


class TestPeriodicPopulation:
    def test_budget_respected(self, rng):
        states = PeriodicPopulation(64, 5, period=4).sample(40, rng)
        assert _changes(states).max() <= 5

    def test_toggling_visible(self, rng):
        states = PeriodicPopulation(32, 8, period=4).sample(40, rng)
        assert _changes(states).max() >= 2

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicPopulation(16, 2, period=0)


class TestScenarios:
    def test_url_tracking(self):
        scenario = url_tracking_scenario(n=200, d=32, k=4)
        assert scenario.states.shape == (200, 32)
        assert _changes(scenario.states).max() <= 4
        assert scenario.params.n == 200
        assert scenario.name == "url_tracking"
        assert scenario.true_counts.shape == (32,)

    def test_telemetry_fleet(self):
        scenario = telemetry_fleet_scenario(n=200, d=32, k=3)
        assert scenario.states.shape == (200, 32)
        assert _changes(scenario.states).max() <= 3
        assert "feature" in scenario.description

    def test_scenarios_reproducible(self):
        a = url_tracking_scenario(n=50, d=16, k=2, rng=np.random.default_rng(5))
        b = url_tracking_scenario(n=50, d=16, k=2, rng=np.random.default_rng(5))
        assert np.array_equal(a.states, b.states)

    def test_heavy_domain_registered_and_runs_end_to_end(self):
        from repro.workloads.scenarios import SCENARIOS

        assert "heavy_domain" in SCENARIOS
        scenario = heavy_domain_scenario(
            n=400, d=4, k=1, epsilon=4.0,
            rng=np.random.default_rng(11), domain_size=64,
        )
        assert scenario.name == "heavy_domain"
        assert scenario.states.shape == (400, 4)
        assert scenario.states.dtype == np.int64
        assert scenario.states.max() < 64
        assert scenario.default_protocol is not None
        # run() with no explicit protocol goes through the item-domain
        # default, not the Boolean future_rand engine.
        result = scenario.run(np.random.default_rng(12))
        assert result.domain_size == 64
        assert result.estimates.shape[0] == 4

    def test_run_trials_sharded_and_persisted(self, tmp_path):
        from repro.sim.store import ResultStore

        scenario = url_tracking_scenario(
            n=150, d=16, k=2, rng=np.random.default_rng(6)
        )
        serial = scenario.run_trials(trials=3, seed=0)
        assert serial.trials == 3
        sharded = scenario.run_trials(trials=3, seed=0, workers=2)
        assert sharded == serial

        store = ResultStore(tmp_path / "results")
        persisted = scenario.run_trials(trials=3, seed=0, store=store)
        assert persisted == serial
        assert store.shard_count() == 3
        reloaded = scenario.run_trials(trials=3, seed=0, store=store)
        assert reloaded == serial


class TestStreams:
    def test_iterate_periods(self):
        states = np.array([[0, 1], [1, 1]])
        items = list(iterate_periods(states))
        assert [t for t, _ in items] == [1, 2]
        assert items[0][1].tolist() == [0, 1]

    def test_population_counts(self):
        states = np.array([[0, 1], [1, 1]])
        assert population_counts(states).tolist() == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(iterate_periods(np.zeros(3)))
        with pytest.raises(ValueError):
            population_counts(np.zeros(3))

"""The churn workload family: arrivals, departures, activity masks, budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.core.vectorized import validate_states
from repro.workloads import SCENARIOS, ChurnPopulation, churn_scenario


class TestChurnPopulation:
    def test_states_are_valid_bounded_change_populations(self):
        population = ChurnPopulation(d=32, k=4)
        states = population.sample(800, np.random.default_rng(0))
        params = ProtocolParams(n=800, d=32, k=4, epsilon=1.0)
        validate_states(states, params)  # 0/1 entries + change budget

    def test_absent_users_hold_zero(self):
        population = ChurnPopulation(d=32, k=3)
        states, active = population.sample_with_activity(
            500, np.random.default_rng(1)
        )
        assert active.shape == states.shape
        assert (states[~active] == 0).all()

    def test_sample_matches_sample_with_activity(self):
        population = ChurnPopulation(d=16, k=3)
        states = population.sample(200, np.random.default_rng(2))
        paired, _ = population.sample_with_activity(200, np.random.default_rng(2))
        np.testing.assert_array_equal(states, paired)

    def test_activity_windows_are_contiguous(self):
        population = ChurnPopulation(d=32, k=2)
        _, active = population.sample_with_activity(300, np.random.default_rng(3))
        # Exactly one arrival transition per user: 0 -> 1 happens once.
        arrivals = np.count_nonzero(
            (~active[:, :-1]) & active[:, 1:], axis=1
        ) + active[:, 0]
        assert (arrivals == 1).all()

    def test_population_actually_churns(self):
        population = ChurnPopulation(d=64, k=4, mean_lifetime=8)
        states, active = population.sample_with_activity(
            2000, np.random.default_rng(4)
        )
        # Some users depart before the horizon, some arrive after period 1,
        # and present users do hold non-zero values.
        assert (~active[:, -1]).any()
        assert (~active[:, 0]).any()
        assert states.sum() > 0

    def test_short_lifetimes_shrink_the_active_fraction(self):
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        brief = ChurnPopulation(d=64, k=3, mean_lifetime=4)
        lasting = ChurnPopulation(d=64, k=3, mean_lifetime=64)
        _, active_brief = brief.sample_with_activity(1500, rng_a)
        _, active_lasting = lasting.sample_with_activity(1500, rng_b)
        assert active_brief.mean() < active_lasting.mean()

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="k must be at least 2"):
            ChurnPopulation(d=16, k=1)
        with pytest.raises(ValueError, match="arrival_window"):
            ChurnPopulation(d=16, k=2, arrival_window=17)
        with pytest.raises(ValueError, match="mean_lifetime"):
            ChurnPopulation(d=16, k=2, mean_lifetime=0)
        with pytest.raises(ValueError, match="cannot exceed"):
            ChurnPopulation(d=4, k=8)


class TestChurnScenario:
    def test_registered_in_scenarios(self):
        assert SCENARIOS["churn"] is churn_scenario
        assert set(SCENARIOS) >= {"url_tracking", "telemetry_fleet", "churn"}

    def test_scenario_runs_through_the_engine(self):
        scenario = churn_scenario(n=400, d=16, k=4, rng=np.random.default_rng(6))
        assert scenario.name == "churn"
        result = scenario.run(np.random.default_rng(7))
        assert result.estimates.shape == (16,)
        np.testing.assert_array_equal(
            result.true_counts, scenario.states.sum(axis=0)
        )

    def test_scenario_is_reproducible(self):
        a = churn_scenario(n=100, d=16, k=3, rng=np.random.default_rng(8))
        b = churn_scenario(n=100, d=16, k=3, rng=np.random.default_rng(8))
        np.testing.assert_array_equal(a.states, b.states)

"""Tests for the precomputed prefix-decomposition operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dyadic.intervals import DyadicInterval, decompose_prefix
from repro.dyadic.prefix_matrix import (
    flat_node_count,
    flat_offsets,
    prefix_decomposition_indices,
    prefix_decomposition_matrix,
    reconstruct_all_prefixes,
)
from repro.dyadic.tree import DyadicTree


class TestLayout:
    def test_flat_node_count(self):
        assert flat_node_count(1) == 1
        assert flat_node_count(8) == 15

    def test_offsets_partition_the_flat_vector(self):
        offsets = flat_offsets(8)
        assert offsets.tolist() == [0, 8, 12, 14]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            flat_node_count(6)


class TestMatrix:
    @pytest.mark.parametrize("d", [1, 2, 8, 64])
    def test_rows_match_decompose_prefix(self, d):
        matrix = prefix_decomposition_matrix(d)
        offsets = flat_offsets(d)
        assert matrix.shape == (d, 2 * d - 1)
        for t in range(1, d + 1):
            expected = np.zeros(2 * d - 1)
            for interval in decompose_prefix(t):
                expected[offsets[interval.order] + interval.index - 1] = 1.0
            np.testing.assert_array_equal(matrix[t - 1], expected)

    def test_row_weight_is_popcount(self):
        matrix = prefix_decomposition_matrix(32)
        for t in range(1, 33):
            assert matrix[t - 1].sum() == bin(t).count("1")

    def test_matrix_is_cached_and_readonly(self):
        first = prefix_decomposition_matrix(16)
        assert prefix_decomposition_matrix(16) is first
        with pytest.raises(ValueError):
            first[0, 0] = 5.0


class TestReconstruction:
    @pytest.mark.parametrize("d", [1, 4, 32, 128])
    def test_matches_per_prefix_walk(self, d):
        rng = np.random.default_rng(d)
        flat = rng.normal(size=2 * d - 1)
        offsets = flat_offsets(d)
        expected = np.array(
            [
                sum(
                    flat[offsets[i.order] + i.index - 1]
                    for i in decompose_prefix(t)
                )
                for t in range(1, d + 1)
            ]
        )
        np.testing.assert_allclose(reconstruct_all_prefixes(flat, d), expected)

    def test_matches_dense_matrix_product(self):
        d = 64
        flat = np.random.default_rng(0).normal(size=2 * d - 1)
        np.testing.assert_allclose(
            reconstruct_all_prefixes(flat, d),
            prefix_decomposition_matrix(d) @ flat,
        )

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            reconstruct_all_prefixes(np.zeros(5), 8)

    def test_indices_entry_count(self):
        rows, cols = prefix_decomposition_indices(16)
        assert rows.size == sum(bin(t).count("1") for t in range(1, 17))
        assert rows.size == cols.size


class TestTreeIntegration:
    def test_tree_all_prefix_sums_uses_same_layout(self):
        tree = DyadicTree(8)
        rng = np.random.default_rng(3)
        for interval in tree.intervals():
            tree[interval] = float(rng.normal())
        expected = np.array([tree.prefix_sum(t) for t in range(1, 9)])
        np.testing.assert_allclose(tree.all_prefix_sums(), expected)

    def test_flat_values_layout(self):
        tree = DyadicTree(4)
        tree[DyadicInterval(0, 3)] = 2.0
        tree[DyadicInterval(1, 2)] = -1.0
        tree[DyadicInterval(2, 1)] = 5.0
        np.testing.assert_array_equal(
            tree.flat_values(), [0.0, 0.0, 2.0, 0.0, 0.0, -1.0, 5.0]
        )

"""Tests for the precomputed prefix-decomposition operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dyadic.intervals import DyadicInterval, decompose_prefix, decompose_range
from repro.dyadic.prefix_matrix import (
    flat_node_count,
    flat_offsets,
    prefix_decomposition_indices,
    prefix_decomposition_matrix,
    range_decomposition_cols,
    reconstruct_all_prefixes,
    reconstruct_range,
    reconstruct_window_series,
    window_decomposition_indices,
)
from repro.dyadic.tree import DyadicTree


class TestLayout:
    def test_flat_node_count(self):
        assert flat_node_count(1) == 1
        assert flat_node_count(8) == 15

    def test_offsets_partition_the_flat_vector(self):
        offsets = flat_offsets(8)
        assert offsets.tolist() == [0, 8, 12, 14]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            flat_node_count(6)


class TestMatrix:
    @pytest.mark.parametrize("d", [1, 2, 8, 64])
    def test_rows_match_decompose_prefix(self, d):
        matrix = prefix_decomposition_matrix(d)
        offsets = flat_offsets(d)
        assert matrix.shape == (d, 2 * d - 1)
        for t in range(1, d + 1):
            expected = np.zeros(2 * d - 1)
            for interval in decompose_prefix(t):
                expected[offsets[interval.order] + interval.index - 1] = 1.0
            np.testing.assert_array_equal(matrix[t - 1], expected)

    def test_row_weight_is_popcount(self):
        matrix = prefix_decomposition_matrix(32)
        for t in range(1, 33):
            assert matrix[t - 1].sum() == bin(t).count("1")

    def test_matrix_is_cached_and_readonly(self):
        first = prefix_decomposition_matrix(16)
        assert prefix_decomposition_matrix(16) is first
        with pytest.raises(ValueError):
            first[0, 0] = 5.0


class TestReconstruction:
    @pytest.mark.parametrize("d", [1, 4, 32, 128])
    def test_matches_per_prefix_walk(self, d):
        rng = np.random.default_rng(d)
        flat = rng.normal(size=2 * d - 1)
        offsets = flat_offsets(d)
        expected = np.array(
            [
                sum(
                    flat[offsets[i.order] + i.index - 1]
                    for i in decompose_prefix(t)
                )
                for t in range(1, d + 1)
            ]
        )
        np.testing.assert_allclose(reconstruct_all_prefixes(flat, d), expected)

    def test_matches_dense_matrix_product(self):
        d = 64
        flat = np.random.default_rng(0).normal(size=2 * d - 1)
        np.testing.assert_allclose(
            reconstruct_all_prefixes(flat, d),
            prefix_decomposition_matrix(d) @ flat,
        )

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            reconstruct_all_prefixes(np.zeros(5), 8)

    def test_indices_entry_count(self):
        rows, cols = prefix_decomposition_indices(16)
        assert rows.size == sum(bin(t).count("1") for t in range(1, 17))
        assert rows.size == cols.size


class TestRangeOperator:
    @pytest.mark.parametrize("d", [2, 8, 64])
    def test_cols_match_decompose_range(self, d):
        offsets = flat_offsets(d)
        rng = np.random.default_rng(d)
        for _ in range(20):
            left = int(rng.integers(1, d + 1))
            right = int(rng.integers(left, d + 1))
            expected = sorted(
                int(offsets[i.order]) + i.index - 1
                for i in decompose_range(left, right)
            )
            assert sorted(range_decomposition_cols(d, left, right)) == expected

    def test_reconstruct_range_matches_tree_range_sum(self):
        d = 32
        tree = DyadicTree(d)
        rng = np.random.default_rng(9)
        for interval in tree.intervals():
            tree[interval] = float(rng.normal())
        flat = tree.flat_values()
        for left, right in [(1, 32), (5, 9), (17, 17), (2, 31)]:
            assert reconstruct_range(flat, d, left, right) == pytest.approx(
                tree.range_sum(left, right)
            )

    def test_interval_count_stays_logarithmic(self):
        d = 1024
        for left, right in [(100, 163), (2, 1023), (512, 513)]:
            cols = range_decomposition_cols(d, left, right)
            budget = 2 * int(np.ceil(np.log2(right - left + 1))) + 2
            assert cols.size <= budget

    def test_validates_bounds_and_shape(self):
        with pytest.raises(ValueError, match="left <= right"):
            range_decomposition_cols(8, 5, 3)
        with pytest.raises(ValueError, match="left <= right"):
            range_decomposition_cols(8, 1, 9)
        with pytest.raises(ValueError, match="shape"):
            reconstruct_range(np.zeros(3), 8, 1, 4)

    def test_cols_are_cached_and_readonly(self):
        first = range_decomposition_cols(16, 3, 11)
        assert range_decomposition_cols(16, 3, 11) is first
        with pytest.raises(ValueError):
            first[0] = 0


class TestWindowOperator:
    @pytest.mark.parametrize("d", [4, 16, 64])
    @pytest.mark.parametrize("window", [1, 3, 8])
    def test_series_matches_naive_per_period_walk(self, d, window):
        rng = np.random.default_rng(d + window)
        flat = rng.normal(size=2 * d - 1)
        offsets = flat_offsets(d)
        expected = []
        for t in range(1, d + 1):
            left = t - window + 1
            intervals = (
                decompose_prefix(t) if left <= 1 else decompose_range(left, t)
            )
            expected.append(
                sum(flat[offsets[i.order] + i.index - 1] for i in intervals)
            )
        np.testing.assert_allclose(
            reconstruct_window_series(flat, d, window), expected
        )

    def test_window_one_is_the_per_period_difference_on_consistent_tree(self):
        """On a consistent tree (node = sum of its leaves) the window-1
        series is exactly the per-period difference of the prefix series."""
        d = 16
        rng = np.random.default_rng(1)
        leaves = rng.normal(size=d)
        flat = np.concatenate(
            [
                leaves.reshape(d >> order, 1 << order).sum(axis=1)
                for order in range(d.bit_length())
            ]
        )
        prefixes = reconstruct_all_prefixes(flat, d)
        np.testing.assert_allclose(prefixes, np.cumsum(leaves))
        series = reconstruct_window_series(flat, d, 1)
        np.testing.assert_allclose(series, np.diff(prefixes, prepend=0.0))

    def test_window_at_least_horizon_is_the_prefix_series(self):
        d = 8
        flat = np.random.default_rng(2).normal(size=2 * d - 1)
        np.testing.assert_allclose(
            reconstruct_window_series(flat, d, d),
            reconstruct_all_prefixes(flat, d),
        )

    def test_indices_cached_and_validated(self):
        first = window_decomposition_indices(16, 4)
        assert window_decomposition_indices(16, 4) is first
        with pytest.raises(ValueError, match="window"):
            window_decomposition_indices(16, 0)
        with pytest.raises(ValueError, match="shape"):
            reconstruct_window_series(np.zeros(3), 8, 2)


class TestTreeIntegration:
    def test_tree_all_prefix_sums_uses_same_layout(self):
        tree = DyadicTree(8)
        rng = np.random.default_rng(3)
        for interval in tree.intervals():
            tree[interval] = float(rng.normal())
        expected = np.array([tree.prefix_sum(t) for t in range(1, 9)])
        np.testing.assert_allclose(tree.all_prefix_sums(), expected)

    def test_flat_values_layout(self):
        tree = DyadicTree(4)
        tree[DyadicInterval(0, 3)] = 2.0
        tree[DyadicInterval(1, 2)] = -1.0
        tree[DyadicInterval(2, 1)] = 5.0
        np.testing.assert_array_equal(
            tree.flat_values(), [0.0, 0.0, 2.0, 0.0, 0.0, -1.0, 5.0]
        )

"""Tests for dyadic intervals and decompositions (Defs. 3.2, Fact 3.8)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dyadic.intervals import (
    DyadicInterval,
    covering_interval,
    decompose_prefix,
    decompose_range,
    interval_set,
    intervals_of_order,
    num_orders,
)


class TestDyadicInterval:
    def test_coordinates(self):
        interval = DyadicInterval(order=2, index=2)
        assert interval.start == 5
        assert interval.end == 8
        assert len(interval) == 4

    def test_contains(self):
        interval = DyadicInterval(1, 2)  # {3, 4}
        assert 3 in interval and 4 in interval
        assert 2 not in interval and 5 not in interval

    def test_times(self):
        assert list(DyadicInterval(1, 1).times()) == [1, 2]

    def test_parent(self):
        assert DyadicInterval(0, 3).parent() == DyadicInterval(1, 2)
        assert DyadicInterval(0, 4).parent() == DyadicInterval(1, 2)

    def test_children(self):
        left, right = DyadicInterval(1, 2).children()
        assert left == DyadicInterval(0, 3)
        assert right == DyadicInterval(0, 4)

    def test_order_zero_has_no_children(self):
        with pytest.raises(ValueError):
            DyadicInterval(0, 1).children()

    def test_overlaps(self):
        assert DyadicInterval(1, 1).overlaps(DyadicInterval(0, 2))
        assert not DyadicInterval(1, 1).overlaps(DyadicInterval(1, 2))

    def test_containing(self):
        assert DyadicInterval.containing(5, 2) == DyadicInterval(2, 2)
        assert DyadicInterval.containing(4, 2) == DyadicInterval(2, 1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DyadicInterval(-1, 1)
        with pytest.raises(ValueError):
            DyadicInterval(0, 0)

    @given(st.integers(min_value=1, max_value=10_000), st.integers(min_value=0, max_value=10))
    def test_containing_property(self, t, order):
        interval = DyadicInterval.containing(t, order)
        assert t in interval
        assert interval.order == order


class TestIntervalSets:
    def test_example_33(self):
        """Example 3.3: all dyadic intervals on [4]."""
        expected = [
            (0, 1), (0, 2), (0, 3), (0, 4), (1, 1), (1, 2), (2, 1),
        ]
        assert [(i.order, i.index) for i in interval_set(4)] == expected

    def test_interval_set_size(self):
        for d in (1, 2, 4, 8, 16, 64):
            assert len(interval_set(d)) == 2 * d - 1

    def test_intervals_of_order(self):
        intervals = intervals_of_order(8, 2)
        assert [(i.start, i.end) for i in intervals] == [(1, 4), (5, 8)]

    def test_order_out_of_range(self):
        with pytest.raises(ValueError):
            intervals_of_order(8, 4)
        with pytest.raises(ValueError):
            intervals_of_order(8, -1)

    def test_num_orders(self):
        assert num_orders(1) == 1
        assert num_orders(8) == 4
        assert num_orders(1024) == 11

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            interval_set(6)


class TestDecomposePrefix:
    def test_paper_example(self):
        """C(3) = {{1,2}, {3}} (Figure 1)."""
        assert [(i.start, i.end) for i in decompose_prefix(3)] == [(1, 2), (3, 3)]

    def test_power_of_two_is_single_interval(self):
        assert [(i.start, i.end) for i in decompose_prefix(8)] == [(1, 8)]

    def test_t_one(self):
        assert [(i.start, i.end) for i in decompose_prefix(1)] == [(1, 1)]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            decompose_prefix(0)

    @given(st.integers(min_value=1, max_value=1 << 16))
    def test_covers_prefix_exactly(self, t):
        intervals = decompose_prefix(t)
        covered = []
        for interval in intervals:
            covered.extend(range(interval.start, interval.end + 1))
        assert covered == list(range(1, t + 1))

    @given(st.integers(min_value=1, max_value=1 << 16))
    def test_distinct_decreasing_orders(self, t):
        orders = [interval.order for interval in decompose_prefix(t)]
        assert orders == sorted(orders, reverse=True)
        assert len(set(orders)) == len(orders)

    @given(st.integers(min_value=1, max_value=1 << 16))
    def test_size_bound(self, t):
        """Fact 3.8: at most ceil(log2 t) + 1 intervals (= popcount of t)."""
        intervals = decompose_prefix(t)
        assert len(intervals) == bin(t).count("1")
        assert len(intervals) <= math.ceil(math.log2(t)) + 1


class TestDecomposeRange:
    def test_paper_example(self):
        """[2..3] decomposes into {{2}, {3}} (Section 3)."""
        assert [(i.start, i.end) for i in decompose_range(2, 3)] == [(2, 2), (3, 3)]

    def test_aligned_range(self):
        assert [(i.start, i.end) for i in decompose_range(1, 4)] == [(1, 4)]

    def test_singleton(self):
        assert [(i.start, i.end) for i in decompose_range(5, 5)] == [(5, 5)]

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            decompose_range(4, 2)

    @given(
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=0, max_value=4095),
    )
    def test_covers_range_exactly(self, left, width):
        right = left + width
        covered = []
        for interval in decompose_range(left, right):
            covered.extend(range(interval.start, interval.end + 1))
        assert covered == list(range(left, right + 1))

    @given(
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=0, max_value=4095),
    )
    def test_size_bound(self, left, width):
        """At most 2*ceil(log2(length)) + 2 intervals."""
        right = left + width
        intervals = decompose_range(left, right)
        length = right - left + 1
        assert len(intervals) <= 2 * math.ceil(math.log2(length + 1)) + 2

    @given(
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=0, max_value=4095),
    )
    def test_intervals_are_dyadic_aligned(self, left, width):
        right = left + width
        for interval in decompose_range(left, right):
            assert (interval.start - 1) % (1 << interval.order) == 0


class TestCoveringInterval:
    def test_chain(self):
        chain = covering_interval(3, 8)
        assert [(i.order, i.index) for i in chain] == [(0, 3), (1, 2), (2, 1), (3, 1)]

    def test_every_link_contains_t(self):
        for interval in covering_interval(5, 16):
            assert 5 in interval

    def test_t_beyond_horizon_rejected(self):
        with pytest.raises(ValueError):
            covering_interval(9, 8)

"""Tests for partial sums (Def. 3.4, Observations 3.6–3.9)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dyadic.intervals import DyadicInterval, interval_set
from repro.dyadic.partial_sums import (
    all_partial_sums,
    partial_sum,
    partial_sums_of_order,
    population_partial_sums,
    reconstruct_prefix,
)

EXAMPLE = [0, 1, 1, 0]  # st_u with X_u = (0, 1, 0, -1)


def power_of_two_states(max_log: int = 5):
    """Strategy: Boolean sequences whose length is a power of two."""
    return st.integers(min_value=0, max_value=max_log).flatmap(
        lambda log: st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=1 << log,
            max_size=1 << log,
        )
    )


class TestPartialSum:
    def test_example_35(self):
        """Every value printed in Example 3.5."""
        expected = {
            DyadicInterval(0, 1): 0,
            DyadicInterval(0, 2): 1,
            DyadicInterval(0, 3): 0,
            DyadicInterval(0, 4): -1,
            DyadicInterval(1, 1): 1,
            DyadicInterval(1, 2): -1,
            DyadicInterval(2, 1): 0,
        }
        for interval, value in expected.items():
            assert partial_sum(EXAMPLE, interval) == value

    def test_out_of_horizon_rejected(self):
        with pytest.raises(ValueError):
            partial_sum(EXAMPLE, DyadicInterval(3, 1))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            partial_sum([0, 1, 0], DyadicInterval(0, 1))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            partial_sum(np.zeros((2, 4), dtype=int), DyadicInterval(0, 1))

    @given(power_of_two_states())
    def test_observation_37_range(self, states):
        """Observation 3.7: every partial sum is in {-1, 0, 1}."""
        for interval in interval_set(len(states)):
            assert partial_sum(states, interval) in (-1, 0, 1)


class TestPartialSumsOfOrder:
    def test_example(self):
        assert partial_sums_of_order(EXAMPLE, 1).tolist() == [1, -1]
        assert partial_sums_of_order(EXAMPLE, 2).tolist() == [0]

    def test_order_zero_is_derivative(self):
        assert partial_sums_of_order(EXAMPLE, 0).tolist() == [0, 1, 0, -1]

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            partial_sums_of_order(EXAMPLE, 3)

    @given(power_of_two_states())
    def test_matches_scalar_api(self, states):
        d = len(states)
        for order in range(d.bit_length()):
            vector = partial_sums_of_order(states, order)
            for j, value in enumerate(vector, start=1):
                assert value == partial_sum(states, DyadicInterval(order, j))

    @given(power_of_two_states())
    def test_observation_36_sparsity(self, states):
        """Observation 3.6: at most k non-zero partial sums per order."""
        deriv_nonzeros = int(
            np.count_nonzero(np.diff(np.concatenate([[0], states])))
        )
        d = len(states)
        for order in range(d.bit_length()):
            vector = partial_sums_of_order(states, order)
            assert int(np.count_nonzero(vector)) <= deriv_nonzeros


class TestAllPartialSums:
    def test_covers_interval_set(self):
        sums = all_partial_sums(EXAMPLE)
        assert set(sums) == set(interval_set(4))

    @given(power_of_two_states())
    def test_observation_39_reconstruction(self, states):
        """Observation 3.9: prefixes reconstruct from C(t)."""
        sums = all_partial_sums(states)
        for t in range(1, len(states) + 1):
            assert reconstruct_prefix(sums, t) == states[t - 1]


class TestPopulationPartialSums:
    def test_sums_over_users(self, rng):
        states = rng.integers(0, 2, size=(20, 8)).astype(np.int8)
        for order in range(4):
            expected = np.array(
                [partial_sums_of_order(row, order) for row in states]
            ).sum(axis=0)
            assert np.array_equal(
                population_partial_sums(states, order), expected
            )

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            population_partial_sums(np.array([0, 1]), 0)

    def test_rejects_excessive_order(self):
        with pytest.raises(ValueError):
            population_partial_sums(np.zeros((2, 4), dtype=np.int8), 3)


class TestReconstructPrefix:
    def test_missing_interval_raises(self):
        with pytest.raises(KeyError):
            reconstruct_prefix({}, 3)

    def test_noisy_values_pass_through(self):
        sums = {interval: 0.5 for interval in interval_set(4)}
        assert reconstruct_prefix(sums, 3) == pytest.approx(1.0)

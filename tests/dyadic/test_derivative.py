"""Tests for the data derivative (Definition 3.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dyadic.derivative import (
    change_count,
    derivative,
    integrate,
    random_change_times,
)

boolean_sequences = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64)


class TestDerivative:
    def test_paper_example(self):
        """st_u = (0,1,1,0) has X_u = (0,1,0,-1) (Definition 3.1)."""
        assert derivative([0, 1, 1, 0]).tolist() == [0, 1, 0, -1]

    def test_initial_one_counts_as_change(self):
        assert derivative([1, 1]).tolist() == [1, 0]

    def test_2d_rows_independent(self):
        matrix = derivative(np.array([[0, 1], [1, 0]]))
        assert matrix.tolist() == [[0, 1], [1, -1]]

    def test_rejects_non_boolean(self):
        with pytest.raises(ValueError):
            derivative([0, 2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            derivative([])

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            derivative(np.zeros((2, 2, 2), dtype=int))

    @given(boolean_sequences)
    def test_roundtrip(self, states):
        assert integrate(derivative(states)).tolist() == states

    @given(boolean_sequences)
    def test_values_in_range(self, states):
        assert set(derivative(states).tolist()) <= {-1, 0, 1}


class TestIntegrate:
    def test_paper_example(self):
        assert integrate([0, 1, 0, -1]).tolist() == [0, 1, 1, 0]

    def test_rejects_invalid_derivative(self):
        with pytest.raises(ValueError):
            integrate([0, -1])  # would go below 0

    def test_rejects_double_increment(self):
        with pytest.raises(ValueError):
            integrate([1, 1])  # would reach 2

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            integrate([2, 0])

    def test_2d(self):
        matrix = integrate(np.array([[0, 1], [1, -1]]))
        assert matrix.tolist() == [[0, 1], [1, 0]]


class TestChangeCount:
    def test_example(self):
        assert change_count([0, 1, 1, 0]) == 2

    def test_no_changes(self):
        assert change_count([0, 0, 0]) == 0

    def test_2d_returns_vector(self):
        counts = change_count(np.array([[0, 1, 1], [1, 0, 1]]))
        assert counts.tolist() == [1, 3]

    @given(boolean_sequences)
    def test_count_matches_adjacent_differences(self, states):
        expected = sum(
            1 for a, b in zip([0, *states[:-1]], states, strict=True) if a != b
        )
        assert change_count(states) == expected


class TestRandomChangeTimes:
    def test_exact_count(self, rng):
        times = random_change_times(32, 5, rng)
        assert times.size == 5

    def test_sorted_unique_in_range(self, rng):
        times = random_change_times(64, 10, rng)
        assert np.all(np.diff(times) > 0)
        assert times.min() >= 1 and times.max() <= 64

    def test_non_exact_bounded(self, rng):
        for _ in range(20):
            times = random_change_times(16, 4, rng, exact=False)
            assert 0 <= times.size <= 4

    def test_k_zero(self, rng):
        assert random_change_times(8, 0, rng).size == 0

    def test_k_exceeding_d_rejected(self, rng):
        with pytest.raises(ValueError):
            random_change_times(4, 5, rng)

"""Tests for the dyadic aggregation tree."""

from __future__ import annotations

import pytest

from repro.dyadic.intervals import DyadicInterval, interval_set
from repro.dyadic.partial_sums import all_partial_sums
from repro.dyadic.tree import DyadicTree


class TestBasics:
    def test_set_get(self):
        tree = DyadicTree(8)
        tree[DyadicInterval(1, 3)] = 2.5
        assert tree[DyadicInterval(1, 3)] == 2.5

    def test_default_zero_and_filled_flag(self):
        tree = DyadicTree(8)
        interval = DyadicInterval(0, 5)
        assert tree[interval] == 0.0
        assert not tree.is_filled(interval)
        tree[interval] = 0.0
        assert tree.is_filled(interval)

    def test_add_accumulates(self):
        tree = DyadicTree(4)
        interval = DyadicInterval(0, 2)
        tree.add(interval, 1.0)
        tree.add(interval, -3.0)
        assert tree[interval] == -2.0

    def test_horizon_and_orders(self):
        tree = DyadicTree(16)
        assert tree.horizon == 16
        assert tree.num_orders == 5

    def test_out_of_range_interval(self):
        tree = DyadicTree(4)
        with pytest.raises(KeyError):
            tree[DyadicInterval(3, 1)]
        with pytest.raises(KeyError):
            tree[DyadicInterval(0, 5)]

    def test_contains_on_bad_interval_is_false(self):
        tree = DyadicTree(4)
        assert DyadicInterval(5, 1) not in tree

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            DyadicTree(12)

    def test_intervals_enumeration(self):
        tree = DyadicTree(8)
        assert list(tree.intervals()) == interval_set(8)


class TestPrefixAndRangeSums:
    def _filled_tree(self, states):
        tree = DyadicTree(len(states))
        for interval, value in all_partial_sums(states).items():
            tree[interval] = value
        return tree

    def test_prefix_sums_reconstruct_states(self):
        states = [0, 1, 1, 0, 1, 1, 1, 0]
        tree = self._filled_tree(states)
        for t in range(1, 9):
            assert tree.prefix_sum(t) == states[t - 1]

    def test_all_prefix_sums(self):
        states = [0, 1, 1, 0]
        tree = self._filled_tree(states)
        assert tree.all_prefix_sums().tolist() == [0.0, 1.0, 1.0, 0.0]

    def test_range_sum_matches_state_difference(self):
        states = [0, 1, 1, 0, 0, 1, 1, 1]
        tree = self._filled_tree(states)
        for left in range(1, 9):
            for right in range(left, 9):
                before = states[left - 2] if left > 1 else 0
                assert tree.range_sum(left, right) == states[right - 1] - before

    def test_require_filled_raises_on_empty(self):
        tree = DyadicTree(4)
        with pytest.raises(KeyError):
            tree.prefix_sum(3, require_filled=True)

    def test_require_filled_passes_when_filled(self):
        tree = DyadicTree(4)
        tree.fill_from(lambda interval: 1.0)
        assert tree.prefix_sum(3, require_filled=True) == 2.0


class TestFillFrom:
    def test_fill_specific_orders(self):
        tree = DyadicTree(8)
        tree.fill_from(lambda interval: float(interval.index), orders=[1])
        assert tree[DyadicInterval(1, 4)] == 4.0
        assert not tree.is_filled(DyadicInterval(0, 1))

    def test_fill_everything(self):
        tree = DyadicTree(4)
        tree.fill_from(lambda interval: 1.0)
        assert all(tree.is_filled(interval) for interval in tree.intervals())


class TestConsistencyResidual:
    def test_exact_sums_are_consistent(self):
        states = [0, 1, 0, 0, 1, 1, 0, 1]
        tree = DyadicTree(8)
        for interval, value in all_partial_sums(states).items():
            tree[interval] = value
        assert tree.consistency_residual() == 0.0

    def test_noisy_tree_has_residual(self, rng):
        tree = DyadicTree(8)
        tree.fill_from(lambda interval: float(rng.normal()))
        assert tree.consistency_residual() > 0.0

"""Statistical conformance: every registered protocol vs its analytical bound.

For each protocol in :data:`repro.protocols.PROTOCOLS`, run a few trials at a
pinned seed on a bounded-change population and assert the observed
``max_t |a_hat[t] - a[t]|`` stays within the protocol's theoretical bound
from :mod:`repro.analysis.bounds`, with explicit failure-probability
accounting (see :mod:`conformance_harness`).  A companion meta-test fails the
suite if a protocol is ever registered without a conformance case, so the
harness cannot silently fall behind the registry.

All protocol executions are marked ``slow``: they are full end-to-end runs at
population sizes where the bounds are non-vacuous.
"""

from __future__ import annotations

import numpy as np
import pytest
from conformance_harness import (
    ConformanceCase,
    assert_error_within_bound,
    categorical_radius,
    central_shape_radius,
    hashed_oracle_radius,
    heavy_hitters_radius,
    hierarchical_radius,
    single_level_radius,
    sketch_median_radius,
    slot_sampled_radius,
)

from repro.core.params import ProtocolParams
from repro.protocols import PROTOCOLS
from repro.utils.rng import spawn_generators
from repro.workloads.generators import BoundedChangePopulation

#: Reference configuration where the local-model bounds are non-vacuous
#: (observed/bound lands between ~0.05 and ~0.55 at the pinned seed).
_BIG = ProtocolParams(n=20_000, d=64, k=4, epsilon=1.0)
#: The object-client driver is O(n*d) Python; a smaller grid keeps it fast.
_SMALL = ProtocolParams(n=1_500, d=16, k=3, epsilon=1.0)

CASES: dict[str, ConformanceCase] = {
    "future_rand": ConformanceCase(
        _BIG, hierarchical_radius, "Eq. 13 with FutureRand's exact c_gap"
    ),
    "future_rand_object": ConformanceCase(
        _SMALL, hierarchical_radius, "Eq. 13, object-client driver"
    ),
    "bun_composed": ConformanceCase(
        _BIG, hierarchical_radius, "Eq. 13 with Bun et al.'s smaller c_gap"
    ),
    "offline_tree": ConformanceCase(
        _BIG, hierarchical_radius, "Eq. 13 with the full-tree sparsity c_gap"
    ),
    "erlingsson": ConformanceCase(
        _BIG, slot_sampled_radius, "Eq. 13 x num_orders (slot sampling)"
    ),
    "naive_split": ConformanceCase(
        _BIG, single_level_radius, "per-period RR at budget epsilon/d"
    ),
    "naive_unsplit": ConformanceCase(
        _BIG, single_level_radius, "per-period RR at full budget"
    ),
    "memoization": ConformanceCase(
        _BIG,
        single_level_radius,
        "per-period debiased permanent RR (each period is an independent "
        "cross-user sum of memoized one-shot RR draws)",
    ),
    "central_tree": ConformanceCase(
        _BIG, central_shape_radius, "central-model shape bound, pinned 4x"
    ),
    # The item-domain protocols run on the same Boolean population (a 0/1
    # item domain tracking item 1), so the scalar bound applies unchanged;
    # the radius helpers' domain/width/repetition defaults match the
    # registry singletons'.
    "categorical": ConformanceCase(
        _BIG,
        categorical_radius,
        "one-hot coordinate sampling: Hoeffding at B = m * num_orders / c_gap",
    ),
    "hashed_frequency": ConformanceCase(
        _BIG,
        hashed_oracle_radius,
        "sign-hash oracle: Hoeffding at B = 1 + 2 num_orders / c_gap",
    ),
    "sketch_median": ConformanceCase(
        _BIG,
        sketch_median_radius,
        "median of R sign-hash repetitions, union-bounded per repetition",
    ),
    "heavy_hitters": ConformanceCase(
        _BIG,
        heavy_hitters_radius,
        "sketch-row median; bucket-collision mass in the failure probability",
    ),
}


def test_every_registered_protocol_has_a_conformance_case():
    """Registering a protocol without a bound conformance case fails CI."""
    missing = sorted(set(PROTOCOLS) - set(CASES))
    stale = sorted(set(CASES) - set(PROTOCOLS))
    assert not missing, (
        f"protocols {missing} are registered but have no statistical "
        f"conformance case in tests/statistical/"
    )
    assert not stale, f"conformance cases {stale} name unregistered protocols"


def test_radius_dispatcher_mirrors_the_registry():
    """The runtime radius map (the fuzzer's fitness denominator) stays exact.

    :data:`repro.analysis.conformance.RADIUS_BY_PROTOCOL` deliberately keys
    by string without importing the protocol layer; this meta-test is what
    keeps those keys equal to :data:`PROTOCOLS` — and consistent with this
    suite's own CASES — as both evolve.
    """
    from repro.analysis.conformance import RADIUS_BY_PROTOCOL, protocol_radius

    assert set(RADIUS_BY_PROTOCOL) == set(PROTOCOLS)
    for name, case in CASES.items():
        assert RADIUS_BY_PROTOCOL[name] is case.radius, (
            f"{name}: RADIUS_BY_PROTOCOL and the test CASES disagree on the "
            f"radius shape"
        )
    with pytest.raises(KeyError, match="no conformance radius"):
        protocol_radius("not_a_protocol", _BIG, 1.0)


def _observed_worst_error(name: str, case: ConformanceCase) -> float:
    protocol = PROTOCOLS[name]
    root = np.random.SeedSequence(case.seed)
    (workload_rng,) = spawn_generators(root, 1)
    states = BoundedChangePopulation(
        case.params.d, case.params.k, exact_k=True
    ).sample(case.params.n, workload_rng)
    trial_rngs = spawn_generators(root.spawn(1)[0], case.trials)
    return max(
        protocol.run(states, case.params, rng).max_abs_error
        for rng in trial_rngs
    )


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_observed_error_within_analytical_bound(name: str):
    """The worst trial error stays below the protocol's theoretical radius."""
    case = CASES[name]
    c_gap = PROTOCOLS[name].c_gap(case.params)
    bound, per_trial_failure = case.radius(case.params, c_gap)
    observed = _observed_worst_error(name, case)
    assert_error_within_bound(
        protocol=name,
        observed_max_abs=observed,
        bound=bound,
        per_trial_failure_probability=per_trial_failure,
        trials=case.trials,
        seed=case.seed,
        note=case.note,
    )


def test_helper_rejects_vacuous_accounting():
    with pytest.raises(ValueError, match="vacuous"):
        assert_error_within_bound(
            protocol="demo",
            observed_max_abs=1.0,
            bound=2.0,
            per_trial_failure_probability=0.5,
            trials=3,
            seed=0,
        )
    with pytest.raises(ValueError, match="in \\(0,1\\)"):
        assert_error_within_bound(
            protocol="demo",
            observed_max_abs=1.0,
            bound=2.0,
            per_trial_failure_probability=0.0,
            trials=1,
            seed=0,
        )


def test_helper_failure_message_names_protocol_and_probability():
    with pytest.raises(AssertionError) as excinfo:
        assert_error_within_bound(
            protocol="demo_protocol",
            observed_max_abs=10.0,
            bound=5.0,
            per_trial_failure_probability=0.01,
            trials=3,
            seed=42,
            note="unit-test case",
        )
    message = str(excinfo.value)
    assert "demo_protocol" in message
    assert "seed 42" in message
    assert "0.97" in message  # 1 - 3 * 0.01
    assert "unit-test case" in message

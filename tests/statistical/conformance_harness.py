"""Shared statistical-conformance helpers for the bound tests.

The harness turns "the protocol's error should match the theory" into a
pinned, accountable assertion:

* every check runs at a **fixed seed**, so a failure is a regression in the
  code (or a wrong bound), never an unlucky draw at test time;
* every bound carries an explicit **per-trial failure probability** — the
  probability, over the protocol's own randomness, that a fresh run at a
  *new* seed would exceed the bound even with correct code.  The helper
  refuses vacuous accounting (total failure probability >= 1) and reports
  the union-bounded total in its failure message, so when a re-seeded run
  trips the bound the reader can judge "1-in-20 event" versus "broken code".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.bounds import central_tree_error_bound, hoeffding_radius
from repro.core.params import ProtocolParams

__all__ = [
    "ConformanceCase",
    "assert_error_within_bound",
    "central_shape_radius",
    "hierarchical_radius",
    "single_level_radius",
    "slot_sampled_radius",
]


def assert_error_within_bound(
    *,
    protocol: str,
    observed_max_abs: float,
    bound: float,
    per_trial_failure_probability: float,
    trials: int,
    seed: int,
    note: str = "",
) -> None:
    """Assert ``observed_max_abs <= bound`` with explicit failure accounting.

    ``per_trial_failure_probability`` is the analytical probability that one
    trial exceeds ``bound``; the total across ``trials`` independent trials
    is union-bounded by their product with ``trials`` and must stay below 1
    for the check to mean anything.
    """
    if not 0 < per_trial_failure_probability < 1:
        raise ValueError(
            f"per_trial_failure_probability must be in (0,1), got "
            f"{per_trial_failure_probability}"
        )
    total_failure_probability = trials * per_trial_failure_probability
    if total_failure_probability >= 1:
        raise ValueError(
            f"vacuous accounting: {trials} trials x "
            f"{per_trial_failure_probability} per-trial failure probability "
            f">= 1; tighten beta or reduce trials"
        )
    if observed_max_abs > bound:
        raise AssertionError(
            f"{protocol}: observed max|error| {observed_max_abs:.1f} exceeds "
            f"its theoretical bound {bound:.1f} "
            f"(ratio {observed_max_abs / bound:.3f}) at pinned seed {seed}. "
            f"The bound holds with probability >= "
            f"{1 - total_failure_probability:.4f} over all {trials} trials, "
            f"so at this fixed seed an exceedance is a code/bound regression, "
            f"not noise.{' ' + note if note else ''}"
        )


def hierarchical_radius(
    params: ProtocolParams, c_gap: float
) -> tuple[float, float]:
    """Eq. (13)'s radius for hierarchical (dyadic-tree) local protocols.

    Per period the bound fails with probability at most ``beta / d``; a union
    bound over the ``d`` periods gives per-trial failure probability
    ``beta``.
    """
    beta_prime = params.beta / params.d
    return hoeffding_radius(params, c_gap, beta_prime), params.beta


def slot_sampled_radius(
    params: ProtocolParams, c_gap: float
) -> tuple[float, float]:
    """Radius for Erlingsson et al.'s slot-sampling estimator.

    Each user reports only one of the ``1 + log2 d`` levels, so the
    inverse-propensity debiasing inflates every per-node term by another
    ``num_orders`` factor relative to Eq. (13)'s all-levels protocol.
    """
    bound, failure = hierarchical_radius(params, c_gap)
    return bound * params.num_orders, failure


def single_level_radius(
    params: ProtocolParams, c_gap: float
) -> tuple[float, float]:
    """Exact per-period randomized-response radius (no tree, no orders).

    ``(1/c_gap) * sqrt(2 n ln(2/beta'))`` with ``beta' = beta / d`` — the
    plain Hoeffding bound for a single debiased RR estimate, union-bounded
    over the ``d`` periods.  Expressed via Eq. (13)'s helper with its
    ``1 + log2 d`` hierarchical factor divided back out.
    """
    beta_prime = params.beta / params.d
    bound = hoeffding_radius(params, c_gap, beta_prime) / params.num_orders
    return bound, params.beta


def central_shape_radius(
    params: ProtocolParams, c_gap: float
) -> tuple[float, float]:
    """Pinned-constant bound for the central-model tree mechanism.

    ``central_tree_error_bound`` is an O-shape (constant-free), so the check
    pins the observed error below ``4x`` the shape — the measured ratio at
    the reference configuration is ~1.3, and the Laplace tail at
    ``log(d/beta)`` puts the exceedance probability of the 4x envelope well
    below ``beta``.
    """
    return 4.0 * central_tree_error_bound(params), params.beta


@dataclass(frozen=True)
class ConformanceCase:
    """One protocol's statistical-conformance configuration."""

    params: ProtocolParams
    radius: Callable[[ProtocolParams, float], tuple[float, float]]
    note: str
    trials: int = 3
    seed: int = 1234

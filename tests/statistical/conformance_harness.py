"""Shared statistical-conformance helpers for the bound tests.

The radius shapes and the accountable bound assertion now live in
:mod:`repro.analysis.conformance` (promoted there so the adversarial fuzzer
in :mod:`repro.fuzz` can score fitness against the exact same bounds the
test suite enforces); this module re-exports them unchanged for the test
files, and keeps the test-side :class:`ConformanceCase` configuration
bundle.

The harness contract is unchanged:

* every check runs at a **fixed seed**, so a failure is a regression in the
  code (or a wrong bound), never an unlucky draw at test time;
* every bound carries an explicit **per-trial failure probability** — the
  probability, over the protocol's own randomness, that a fresh run at a
  *new* seed would exceed the bound even with correct code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.conformance import (  # noqa: F401  (re-exported surface)
    RADIUS_BY_PROTOCOL,
    assert_error_within_bound,
    categorical_radius,
    central_shape_radius,
    fault_adjusted_radius,
    hashed_oracle_radius,
    heavy_hitters_radius,
    hierarchical_radius,
    protocol_radius,
    single_level_radius,
    sketch_median_radius,
    slot_sampled_radius,
)
from repro.core.params import ProtocolParams

__all__ = [
    "ConformanceCase",
    "RADIUS_BY_PROTOCOL",
    "assert_error_within_bound",
    "categorical_radius",
    "central_shape_radius",
    "fault_adjusted_radius",
    "hashed_oracle_radius",
    "heavy_hitters_radius",
    "hierarchical_radius",
    "protocol_radius",
    "single_level_radius",
    "sketch_median_radius",
    "slot_sampled_radius",
]


@dataclass(frozen=True)
class ConformanceCase:
    """One protocol's statistical-conformance configuration."""

    params: ProtocolParams
    radius: Callable[[ProtocolParams, float], tuple[float, float]]
    note: str
    trials: int = 3
    seed: int = 1234

"""The shipped fuzz corpus replays as tier-1 conformance regressions.

Every entry committed under ``results/fuzz/`` is a fuzzer-discovered
worst-case workload pinned against the analytical radius.  This suite is the
regression lock: each entry must (a) replay *bit-identically* with its
recorded kernel — the discovery run is reproducible forever — and (b) stay
within its fault-adjusted analytical radius under every kernel backend the
protocol supports, with the same explicit failure-probability accounting the
rest of the statistical suite uses.  It also pins the corpus floor the PR
ships (>= 3 entries over >= 2 protocols) and checks
:func:`repro.fuzz.register_corpus` installs every entry as a named pinned
scenario.

Deliberately NOT marked slow: corpus replay is the fast-lane face of the
fuzzer (the evolutionary search itself lives in the nightly lane).
"""

from __future__ import annotations

from pathlib import Path

import pytest
from conformance_harness import assert_error_within_bound

from repro.fuzz.corpus import FuzzCorpus, register_corpus, replay_entry
from repro.kernels import available_kernels
from repro.protocols import PROTOCOLS

CORPUS_DIR = Path(__file__).resolve().parents[2] / "results" / "fuzz"

ENTRIES = FuzzCorpus(CORPUS_DIR).load_all()


def _entry_id(entry) -> str:
    return f"{entry.protocol}-{entry.digest[:12]}"


def test_shipped_corpus_meets_the_floor():
    assert len(ENTRIES) >= 3, "the PR ships at least 3 pinned worst cases"
    assert len({entry.protocol for entry in ENTRIES}) >= 2, (
        "the corpus covers at least 2 registry protocols"
    )
    for entry in ENTRIES:
        assert entry.protocol in PROTOCOLS


@pytest.mark.parametrize("entry", ENTRIES, ids=_entry_id)
def test_replay_is_bit_identical_with_recorded_kernel(entry):
    """The discovery run must reproduce exactly — drift is a regression."""
    metrics = replay_entry(entry)
    assert tuple(tuple(trial) for trial in metrics) == entry.metrics, (
        f"corpus entry {entry.scenario_name} no longer replays "
        f"bit-identically; a determinism-contract regression upstream of "
        f"{entry.protocol}"
    )


@pytest.mark.parametrize("entry", ENTRIES, ids=_entry_id)
@pytest.mark.parametrize("kernel", sorted(available_kernels()))
def test_replay_stays_within_the_bound_under_every_kernel(entry, kernel):
    """Observed max-error <= the pinned fault-adjusted radius, per backend.

    Kernel-less protocols replay their recorded (reference) path for every
    parametrization — the redundant run doubles as a stability check.
    """
    resolved = kernel if PROTOCOLS[entry.protocol].supports_kernel else None
    metrics = replay_entry(entry, kernel=resolved)
    observed = max(trial[0] for trial in metrics)
    assert_error_within_bound(
        protocol=f"{entry.protocol}[{entry.scenario_name}, kernel={kernel}]",
        observed_max_abs=observed,
        bound=entry.radius,
        per_trial_failure_probability=entry.per_trial_failure,
        trials=entry.trials,
        seed=entry.seed,
        note=(
            "fuzzer-pinned worst case; the radius is fault-adjusted for the "
            f"genome's drop_rate={entry.genome.drop_rate} / "
            f"duplicate_rate={entry.genome.duplicate_rate}"
        ),
    )


def test_corpus_registers_as_pinned_scenarios():
    registry: dict = {}
    names = register_corpus(CORPUS_DIR, registry=registry)
    assert sorted(names) == sorted(
        entry.scenario_name for entry in ENTRIES
    )
    for entry in ENTRIES:
        scenario = registry[entry.scenario_name]()
        assert scenario.name == entry.scenario_name
        assert scenario.params == entry.params
        assert scenario.states.shape == (entry.params.n, entry.params.d)
        assert entry.protocol in scenario.description


def test_corpus_registers_into_the_global_registry():
    """The public entry point installs into SCENARIOS (and is idempotent)."""
    from repro.workloads import SCENARIOS

    names = register_corpus(CORPUS_DIR)
    try:
        assert set(names) <= set(SCENARIOS)
        assert register_corpus(CORPUS_DIR) == names
    finally:
        for name in names:
            SCENARIOS.pop(name, None)


@pytest.mark.parametrize("entry", ENTRIES, ids=_entry_id)
def test_pinned_observations_are_self_consistent(entry):
    """The recorded summary agrees with the recorded per-trial metrics."""
    assert entry.observed_max_abs == max(trial[0] for trial in entry.metrics)
    assert entry.observed_max_abs <= entry.radius
    assert entry.radius >= entry.base_radius
    assert len(entry.metrics) == entry.trials

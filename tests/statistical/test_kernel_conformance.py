"""Statistical conformance of the fast kernel, per randomizer family.

The perf claim of :mod:`repro.kernels` is only worth anything if the fast
backend estimates are exactly as accurate as the reference ones.  For every
concrete :class:`RandomizerFamily` in the library, run the full protocol
through ``run_batch(..., kernel=...)`` under *both* backends and assert the
observed worst-case error stays inside the family's analytical Eq. 13
radius with explicit failure accounting — the same pinned-seed harness the
protocol registry is held to.  A meta-test enumerates the concrete family
subclasses so a new family cannot ship without a fast-kernel conformance
case.
"""

from __future__ import annotations

import numpy as np
import pytest
from conformance_harness import assert_error_within_bound, hierarchical_radius

from repro.analysis.calibration import CalibratedFutureRandFamily
from repro.baselines.bun_composed import BunComposedFamily
from repro.core.future_rand import FutureRandFamily
from repro.core.interfaces import RandomizerFamily
from repro.core.params import ProtocolParams
from repro.core.simple_randomizer import SimpleRandomizerFamily
from repro.core.vectorized import run_batch
from repro.utils.rng import spawn_generators
from repro.workloads.generators import BoundedChangePopulation

#: Same reference configuration as the protocol conformance suite: the
#: Eq. 13 radius is non-vacuous here for every family below.
_PARAMS = ProtocolParams(n=20_000, d=64, k=4, epsilon=1.0)
_TRIALS = 3
_SEED = 1234

#: Every concrete randomizer family, by constructor.  The Eq. 13 radius is
#: computed from each family's own exact c_gap, so one radius function
#: covers them all.
FAMILY_FACTORIES = {
    "future_rand": FutureRandFamily,
    "bun_composed": BunComposedFamily,
    "future_rand_calibrated": CalibratedFutureRandFamily,
    "simple_rr": SimpleRandomizerFamily,
}


def test_every_concrete_family_has_a_kernel_conformance_case():
    """A new RandomizerFamily subclass must be added to this suite."""

    def concrete_subclasses(base):
        found = set()
        for subclass in base.__subclasses__():
            found.add(subclass)
            found |= concrete_subclasses(subclass)
        return found

    covered = {factory for factory in FAMILY_FACTORIES.values()}
    missing = sorted(
        subclass.__name__
        for subclass in concrete_subclasses(RandomizerFamily)
        # Library families only: test suites define throwaway toy families.
        if subclass not in covered and subclass.__module__.startswith("repro.")
    )
    assert not missing, (
        f"randomizer families {missing} have no fast-kernel statistical "
        f"conformance case in tests/statistical/test_kernel_conformance.py"
    )


def _observed_worst_error(family, kernel: str) -> float:
    root = np.random.SeedSequence(_SEED)
    (workload_rng,) = spawn_generators(root, 1)
    states = BoundedChangePopulation(_PARAMS.d, _PARAMS.k, exact_k=True).sample(
        _PARAMS.n, workload_rng
    )
    trial_rngs = spawn_generators(root.spawn(1)[0], _TRIALS)
    return max(
        run_batch(states, _PARAMS, rng, family=family, kernel=kernel).max_abs_error
        for rng in trial_rngs
    )


@pytest.mark.slow
@pytest.mark.parametrize("kernel", ["fast", "reference"])
@pytest.mark.parametrize("name", sorted(FAMILY_FACTORIES))
def test_family_error_within_analytical_bound(name: str, kernel: str):
    """Both backends keep every family inside its own Eq. 13 radius."""
    family = FAMILY_FACTORIES[name](_PARAMS.k, _PARAMS.epsilon)
    bound, per_trial_failure = hierarchical_radius(_PARAMS, family.c_gap)
    observed = _observed_worst_error(family, kernel)
    assert_error_within_bound(
        protocol=f"{name}[kernel={kernel}]",
        observed_max_abs=observed,
        bound=bound,
        per_trial_failure_probability=per_trial_failure,
        trials=_TRIALS,
        seed=_SEED,
        note=f"Eq. 13 with {name}'s exact c_gap through the {kernel} backend",
    )


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(FAMILY_FACTORIES))
def test_fast_matches_reference_error_scale(name: str):
    """Fast and reference worst-case errors agree in magnitude.

    Both are draws of the same error distribution, whose scale is set by
    ``sqrt(n) / c_gap``; a kernel bug that silently inflated variance (say,
    double-flipping) would separate the two by far more than seed noise.
    The factor-4 envelope is ~10x looser than the observed seed-to-seed
    spread at this configuration.
    """
    family = FAMILY_FACTORIES[name](_PARAMS.k, _PARAMS.epsilon)
    fast = _observed_worst_error(family, "fast")
    reference = _observed_worst_error(family, "reference")
    ratio = fast / reference
    assert 0.25 <= ratio <= 4.0, (
        f"{name}: fast/reference worst-error ratio {ratio:.2f} outside "
        f"[0.25, 4] (fast={fast:.1f}, reference={reference:.1f})"
    )

"""Quickstart: track a Boolean population privately for 64 time periods.

Demonstrates the minimal end-to-end flow of the library:

1. pick protocol parameters,
2. generate (or bring) a population whose users change at most ``k`` times,
3. run the FutureRand protocol,
4. compare the online estimates against the ground truth and against the
   theoretical error radius.

Local LDP error scales like ``sqrt(n)`` with a ``(1 + log2 d)/c_gap`` constant
of a few hundred, so — exactly as in industrial deployments — a population in
the millions is needed before the signal dominates the noise.  The vectorized
driver handles that comfortably.

Picking a driver — three interchangeable options, same distribution of
outputs (the randomizer kernels are shared):

* ``repro.core.vectorized.run_batch`` (used below) — offline batch: fastest
  way to get all ``d`` estimates at once; no per-period hooks.
* ``repro.sim.BatchSimulationEngine`` — *online* batch: replays the protocol
  period by period with per-period ``StepSnapshot`` callbacks and report-drop
  fault injection, still vectorized across the population.  Use it for live
  monitoring or robustness studies at scale.
* ``repro.sim.SimulationEngine`` — object engine: one Python ``Client`` per
  user; the deployment-shaped reference, ~2 orders of magnitude slower.
  Use it to exercise per-user mechanics, not for large populations.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ProtocolParams, run_batch
from repro.analysis.bounds import hoeffding_radius, theorem41_error_bound
from repro.workloads import BoundedChangePopulation


def main() -> None:
    # 2M users, 64 periods, at most 2 changes each, privacy budget 1.0.
    params = ProtocolParams(n=2_000_000, d=64, k=2, epsilon=1.0)
    params.check_theorem_assumptions()  # we are inside Theorem 4.1's regime

    population = BoundedChangePopulation(params.d, params.k, start_prob=0.3)
    states = population.sample(params.n, np.random.default_rng(0))

    result = run_batch(states, params, np.random.default_rng(1))

    radius = hoeffding_radius(params, result.c_gap, params.beta / params.d)
    print(f"population:             n={params.n:,}, d={params.d}, k={params.k}")
    print(f"randomizer:             {result.family_name}, c_gap={result.c_gap:.5f}")
    print(f"max |error| over time:  {result.max_abs_error:,.0f} users "
          f"({result.max_abs_error / params.n:.1%} of n)")
    print(f"mean |error|:           {result.mean_abs_error:,.0f} users")
    print(f"Eq. 13 radius (w.h.p.): {radius:,.0f}")
    print(f"Theorem 4.1 shape:      {theorem41_error_bound(params):,.0f} (no constant)")
    print()
    print("  t    true count     estimate       error")
    for t in (1, 16, 32, 48, 64):
        true = result.true_counts[t - 1]
        estimate = result.estimates[t - 1]
        print(f"{t:4d}   {true:11,.0f}  {estimate:11,.0f}  {estimate - true:+10,.0f}")


if __name__ == "__main__":
    main()

"""Quickstart: track a Boolean population privately for 64 time periods.

Demonstrates the minimal end-to-end flow of the library, through the unified
protocol registry (``repro.protocols``):

1. pick protocol parameters,
2. generate (or bring) a population whose users change at most ``k`` times,
3. look the FutureRand protocol up by name and run it one-shot,
4. compare the online estimates against the ground truth and against the
   theoretical error radius,
5. replay the last periods through the *streaming* Session API — the
   deployment shape, one population column per period.

Local LDP error scales like ``sqrt(n)`` with a ``(1 + log2 d)/c_gap`` constant
of a few hundred, so — exactly as in industrial deployments — a population in
the millions is needed before the signal dominates the noise.  The vectorized
driver behind ``get_protocol("future_rand").run`` handles that comfortably.

Every mechanism in the repository is available the same way: run
``python -m repro.cli protocols`` for the registry listing, and swap the
name below (``"erlingsson"``, ``"memoization"``, ``"central_tree"``, ...) to
compare — same populations, same API.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ProtocolParams
from repro.analysis.bounds import hoeffding_radius, theorem41_error_bound
from repro.protocols import get_protocol
from repro.workloads import BoundedChangePopulation


def main() -> None:
    # 2M users, 64 periods, at most 2 changes each, privacy budget 1.0.
    params = ProtocolParams(n=2_000_000, d=64, k=2, epsilon=1.0)
    params.check_theorem_assumptions()  # we are inside Theorem 4.1's regime

    population = BoundedChangePopulation(params.d, params.k, start_prob=0.3)
    states = population.sample(params.n, np.random.default_rng(0))

    protocol = get_protocol("future_rand")
    result = protocol.run(states, params, np.random.default_rng(1))

    radius = hoeffding_radius(params, result.c_gap, params.beta / params.d)
    print(f"population:             n={params.n:,}, d={params.d}, k={params.k}")
    print(f"randomizer:             {result.family_name}, c_gap={result.c_gap:.5f}")
    print(f"max |error| over time:  {result.max_abs_error:,.0f} users "
          f"({result.max_abs_error / params.n:.1%} of n)")
    print(f"mean |error|:           {result.mean_abs_error:,.0f} users")
    print(f"Eq. 13 radius (w.h.p.): {radius:,.0f}")
    print(f"Theorem 4.1 shape:      {theorem41_error_bound(params):,.0f} (no constant)")
    print()
    print("  t    true count     estimate       error")
    for t in (1, 16, 32, 48, 64):
        true = result.true_counts[t - 1]
        estimate = result.estimates[t - 1]
        print(f"{t:4d}   {true:11,.0f}  {estimate:11,.0f}  {estimate - true:+10,.0f}")

    # The same protocol, streaming: feed one period's column at a time and
    # read each estimate the moment its period closes.  (A smaller population
    # keeps this demo loop quick; the distribution of outputs is identical.)
    print()
    print("streaming the first 8 periods of a 100k-user fleet:")
    small = ProtocolParams(n=100_000, d=64, k=2, epsilon=1.0)
    fleet = population.sample(small.n, np.random.default_rng(2))
    session = protocol.prepare(small, np.random.default_rng(3))
    for t in range(1, small.d + 1):
        session.ingest(t, fleet[:, t - 1])
        if t <= 8:
            released = session.estimates()[-1]
            true = fleet[:, t - 1].sum()
            print(f"  t={t}  estimate={released:10,.0f}  true={true:7,d}")
    print(f"final max |error|: {session.result().max_abs_error:,.0f} users")


if __name__ == "__main__":
    main()

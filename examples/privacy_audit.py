"""Privacy audit: verify the epsilon guarantee *exactly*, then watch it fail
for a mis-calibrated randomizer.

Differential privacy is a worst-case property of output distributions, so it
can't be demonstrated by sampling — but this library's composed randomizer
has a closed-form law, so the guarantee can be *computed*.  This example:

1. prints the exact privacy ledger of FutureRand across k,
2. shows what the budget would be if a careless implementer reused the
   Example 4.2 per-coordinate budget ``epsilon`` (instead of ``epsilon/k``)
   — the classic longitudinal-composition mistake the paper is about.

Run:  python examples/privacy_audit.py
"""

from __future__ import annotations


from repro.analysis.privacy import client_report_log_ratio
from repro.core.annulus import AnnulusLaw

EPSILON = 1.0


def main() -> None:
    print(f"target budget: epsilon = {EPSILON}")
    print()
    print("  k   composed ratio   client ratio   budget spent")
    for k in (1, 2, 4, 8, 16, 32):
        law = AnnulusLaw.for_future_rand(k, EPSILON)
        composed = law.privacy_log_ratio()
        client = client_report_log_ratio(law)
        print(
            f"{k:3d}   {composed:14.4f}   {client:12.4f}   "
            f"{client / EPSILON:10.1%}   {'OK' if client <= EPSILON else 'VIOLATION'}"
        )

    print()
    print("mis-calibrated independent randomizer (per-coordinate budget = epsilon):")
    for k in (1, 4, 16):
        # Each of the k non-zero coordinates leaks a full epsilon; the joint
        # report law ratio composes to k * epsilon.
        leaked = k * EPSILON
        print(
            f"  k={k:2d}: end-to-end ratio e^{leaked:.1f} "
            f"({'OK' if leaked <= EPSILON else f'VIOLATION - {leaked / EPSILON:.0f}x over budget'})"
        )
    print()
    print(
        "FutureRand spends a *constant* budget regardless of k by correlating\n"
        "the per-coordinate noise (the annulus construction of Section 5)."
    )


if __name__ == "__main__":
    main()

"""Longitudinal heavy hitters over a *huge* item domain (Section 1 extension).

Users each hold one of ``m = 2^20`` items (say, a default search engine or a
homepage URL) and switch rarely.  The ``heavy_hitters`` registry protocol
reduces the domain to a count sketch with per-bit identity channels — every
user runs ONE Boolean "randomize the future" sub-protocol — so memory is
O(R log m) dyadic servers, never O(m).  Midway through the horizon, a
challenger item overtakes the incumbent; the streaming session decodes the
top items every period, so the flip is visible the period it happens.

Run:  python examples/heavy_hitters.py
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ProtocolParams
from repro.protocols import get_protocol

INCUMBENT = 271_828
CHALLENGER = 314_159


def build_population(
    n: int, d: int, m: int, rng: np.random.Generator
) -> np.ndarray:
    """The incumbent starts dominant; most of its holders defect midway."""
    draws = rng.random(n)
    items = rng.integers(0, m, size=n, dtype=np.int64)
    items[draws < 0.55] = INCUMBENT
    items[(draws >= 0.55) & (draws < 0.80)] = CHALLENGER
    matrix = np.repeat(items[:, None], d, axis=1)
    defectors = (items == INCUMBENT) & (rng.random(n) < 0.8)
    switch_times = rng.integers(d // 4, 3 * d // 4, size=n) + 1
    columns = np.arange(1, d + 1)[None, :]
    switched = defectors[:, None] & (columns > switch_times[:, None])
    return np.where(switched, np.int64(CHALLENGER), matrix)


def main() -> None:
    n, d, m = 500_000, 4, 1 << 20
    params = ProtocolParams(n=n, d=d, k=1, epsilon=8.0)
    rng = np.random.default_rng(11)
    items = build_population(n, d, m, rng)
    truth = np.stack(
        [
            [(items[:, t] == INCUMBENT).sum(), (items[:, t] == CHALLENGER).sum()]
            for t in range(d)
        ]
    )

    protocol = get_protocol("heavy_hitters").with_domain_size(m)
    session = protocol.prepare(params, np.random.default_rng(12))
    print(
        f"n={n:,} users, m={m:,} items, d={d} periods "
        f"(k=1 switch budget, epsilon={params.epsilon})"
    )
    print()
    print("   t   decoded top items                  true leader")
    for t in range(1, d + 1):
        session.ingest(t, items[:, t - 1])
        decoded = session.top_items()[t - 1][:2]
        shown = ", ".join(str(item) for item in decoded)
        true_leader = INCUMBENT if truth[t - 1, 0] >= truth[t - 1, 1] else CHALLENGER
        print(f"{t:4d}   {shown:<33}   {true_leader}")

    result = session.result()
    final = dict(result.heavy_hitters[d - 1])
    print()
    print("final-period planted items (estimate vs truth):")
    for label, item, true_count in (
        ("incumbent ", INCUMBENT, truth[d - 1, 0]),
        ("challenger", CHALLENGER, truth[d - 1, 1]),
    ):
        estimate = final.get(item)
        shown = f"{estimate:,.0f}" if estimate is not None else "not decoded"
        print(f"  {label} {item}: {shown}   (true {true_count:,})")
    flip_truth = next(
        (t for t in range(1, d + 1) if truth[t - 1, 1] > truth[t - 1, 0]), None
    )
    flip_estimate = next(
        (
            t
            for t, tops in enumerate(session.top_items(), start=1)
            if tops and tops[0] == CHALLENGER
        ),
        None,
    )
    print(f"leader flip decoded at t={flip_estimate} (true flip: t={flip_truth})")


if __name__ == "__main__":
    main()

"""Longitudinal heavy hitters over a categorical domain (Section 1 extension).

Users each hold one of ``m`` items (say, a default search engine) and switch
rarely.  The categorical extension reduces the problem to the Boolean
protocol via one-hot coordinate sampling; the heavy-hitter tracker then
reports the top item every period.  Midway through, a challenger item
overtakes the incumbent — the tracker should catch the flip within a few
periods.

Run:  python examples/heavy_hitters.py
"""

from __future__ import annotations

import numpy as np

from repro.extensions import CategoricalLongitudinalProtocol, top_items
from repro.extensions.heavy_hitters import precision_at_r


def build_population(
    n: int, d: int, m: int, rng: np.random.Generator
) -> np.ndarray:
    """Item 0 starts dominant; most of its holders defect to item 1 midway."""
    probabilities = [0.55, 0.25] + [0.20 / (m - 2)] * (m - 2)
    items = rng.choice(m, size=n, p=probabilities).astype(np.int8)
    matrix = np.tile(items[:, np.newaxis], (1, d))
    defectors = (items == 0) & (rng.random(n) < 0.8)
    switch_times = rng.integers(d // 4, 3 * d // 4, size=n)
    columns = np.arange(d)[np.newaxis, :]
    switched = defectors[:, np.newaxis] & (columns >= switch_times[:, np.newaxis])
    return np.where(switched, np.int8(1), matrix)


def main() -> None:
    n, d, m = 2_000_000, 16, 4
    rng = np.random.default_rng(11)
    items = build_population(n, d, m, rng)

    protocol = CategoricalLongitudinalProtocol(m=m, d=d, k=1, epsilon=1.0)
    estimates = protocol.run(items, np.random.default_rng(12))
    truth = CategoricalLongitudinalProtocol.true_counts(items, m)

    reported = top_items(estimates, r=1)
    true_top = top_items(truth.astype(float), r=1)

    print(f"n={n:,} users, m={m} items, d={d} periods (k=1 switch budget)")
    print()
    print("   t   estimated leader   true leader   est. share   true share")
    for t in (1, 4, 8, 12, 16):
        share = estimates[t - 1, reported[t - 1][0]] / n
        true_share = truth[t - 1, true_top[t - 1][0]] / n
        print(
            f"{t:4d}   {reported[t - 1][0]:16d}   {true_top[t - 1][0]:11d}"
            f"   {share:10.1%}   {true_share:10.1%}"
        )

    precision = precision_at_r(reported, truth, r=1)
    flip_estimate = next(
        (t for t, tops in enumerate(reported, start=1) if tops and tops[0] == 1), None
    )
    flip_truth = next(
        (t for t, tops in enumerate(true_top, start=1) if tops[0] == 1), None
    )
    print()
    print(f"mean precision@1 over all periods: {precision:.2f}")
    print(f"leader flip detected at t={flip_estimate} (true flip: t={flip_truth})")


if __name__ == "__main__":
    main()

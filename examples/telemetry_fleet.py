"""Telemetry fleet monitoring: online mechanics + deployment-scale accuracy.

Devices report whether a feature flag is enabled while the fleet adopts the
feature along a sigmoid ramp (the Ding et al. 2017 use case).

Part 1 runs the real client/server object protocol period by period on a
small fleet — showing the report flow a deployment would see.  Part 2 reruns
the same scenario at deployment scale (1M devices) with the vectorized driver
and answers a monitoring question: when did fleet-wide enablement cross 50%?

Run:  python examples/telemetry_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ProtocolParams
from repro.core.vectorized import run_batch
from repro.sim.engine import SimulationEngine, StepSnapshot
from repro.workloads import TrendPopulation, telemetry_fleet_scenario


def online_mechanics() -> None:
    """Part 1: the deployment-shaped event loop (small fleet)."""
    scenario = telemetry_fleet_scenario(
        n=2_000, d=32, k=3, epsilon=1.0, rng=np.random.default_rng(3)
    )
    print("Part 1 - online event loop (n=2,000; estimates are noise-dominated")
    print("at this fleet size, illustrating the sqrt(n) cost of the local model):")
    print("   t    reports    estimate    true")

    def monitor(snapshot: StepSnapshot) -> None:
        if snapshot.t % 8 == 0:
            print(
                f"{snapshot.t:5d}  {snapshot.reports_this_period:8d}  "
                f"{snapshot.estimate:10,.0f}  {snapshot.true_count:6d}"
            )

    SimulationEngine(scenario.params, rng=np.random.default_rng(4)).run(
        scenario.states, monitor
    )


def deployment_scale() -> None:
    """Part 2: 1M devices through the vectorized driver."""
    params = ProtocolParams(n=1_000_000, d=64, k=4, epsilon=1.0)
    states = TrendPopulation(params.d, params.k, curve="sigmoid").sample(
        params.n, np.random.default_rng(5)
    )
    result = run_batch(states, params, np.random.default_rng(6))

    # Light post-processing (moving average) is free: the estimates are
    # already private, and adjacent-period smoothing cuts independent noise.
    kernel = np.ones(5) / 5.0
    smoothed = np.convolve(result.estimates, kernel, mode="same")

    half = params.n / 2
    estimated_crossing = int(np.argmax(smoothed >= half)) + 1
    true_crossing = int(np.argmax(result.true_counts >= half)) + 1

    print()
    print(f"Part 2 - deployment scale (n={params.n:,}):")
    print(f"max |error|: {result.max_abs_error:,.0f} "
          f"({result.max_abs_error / params.n:.1%} of the fleet)")
    print(f"estimated 50% adoption at t={estimated_crossing} "
          f"(true: t={true_crossing})")
    print()
    print("   t    true adoption    estimate (smoothed)")
    for t in (8, 24, 32, 40, 56):
        print(
            f"{t:5d}   {result.true_counts[t - 1] / params.n:13.1%}    "
            f"{smoothed[t - 1] / params.n:13.1%}"
        )


def main() -> None:
    online_mechanics()
    deployment_scale()


if __name__ == "__main__":
    main()

"""Telemetry fleet monitoring: online mechanics + deployment-scale accuracy.

Devices report whether a feature flag is enabled while the fleet adopts the
feature along a sigmoid ramp (the Ding et al. 2017 use case).

Part 1 replays the online protocol period by period on a mid-size fleet with
the *batched* engine — the same per-period report flow, clock semantics and
monitoring callbacks a deployment would see, but vectorized across the
population — and injects a 30% report-drop fault to show the resulting bias.
Part 2 reruns the scenario at deployment scale (1M devices) and answers a
monitoring question: when did fleet-wide enablement cross 50%?

(The object engine — one ``Client`` state machine per device — exercises the
identical event loop at O(n*d) interpreter cost; use it when you want to step
through per-device mechanics rather than monitor a fleet.)

Run:  python examples/telemetry_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ProtocolParams
from repro.sim.batch_engine import BatchSimulationEngine
from repro.sim.engine import StepSnapshot
from repro.workloads import TrendPopulation, telemetry_fleet_scenario


def online_mechanics() -> None:
    """Part 1: the online event loop, vectorized (n=20,000)."""
    scenario = telemetry_fleet_scenario(
        n=20_000, d=32, k=3, epsilon=1.0, rng=np.random.default_rng(3)
    )
    print("Part 1 - online event loop (batched engine, n=20,000), healthy")
    print("network vs. 30% of reports dropped in transit:")
    print("   t    reports    estimate    true        reports    estimate (30% drop)")

    healthy: list[StepSnapshot] = []
    degraded: list[StepSnapshot] = []
    BatchSimulationEngine(scenario.params, rng=np.random.default_rng(4)).run(
        scenario.states, healthy.append
    )
    BatchSimulationEngine(
        scenario.params, rng=np.random.default_rng(4), report_drop_rate=0.3
    ).run(scenario.states, degraded.append)

    for full, dropped in zip(healthy, degraded, strict=True):
        if full.t % 8 == 0:
            print(
                f"{full.t:5d}  {full.reports_this_period:8d}  "
                f"{full.estimate:10,.0f}  {full.true_count:6d}     "
                f"{dropped.reports_this_period:8d}  {dropped.estimate:10,.0f}"
            )


def deployment_scale() -> None:
    """Part 2: 1M devices through the batched engine."""
    params = ProtocolParams(n=1_000_000, d=64, k=4, epsilon=1.0)
    states = TrendPopulation(params.d, params.k, curve="sigmoid").sample(
        params.n, np.random.default_rng(5)
    )
    engine = BatchSimulationEngine(params, rng=np.random.default_rng(6))
    result = engine.run(states)

    # Light post-processing (moving average) is free: the estimates are
    # already private, and adjacent-period smoothing cuts independent noise.
    kernel = np.ones(5) / 5.0
    smoothed = np.convolve(result.estimates, kernel, mode="same")

    half = params.n / 2
    estimated_crossing = int(np.argmax(smoothed >= half)) + 1
    true_crossing = int(np.argmax(result.true_counts >= half)) + 1

    print()
    print(f"Part 2 - deployment scale (n={params.n:,}):")
    print(f"max |error|: {result.max_abs_error:,.0f} "
          f"({result.max_abs_error / params.n:.1%} of the fleet)")
    print(f"estimated 50% adoption at t={estimated_crossing} "
          f"(true: t={true_crossing})")
    print()
    print("   t    true adoption    estimate (smoothed)")
    for t in (8, 24, 32, 40, 56):
        print(
            f"{t:5d}   {result.true_counts[t - 1] / params.n:13.1%}    "
            f"{smoothed[t - 1] / params.n:13.1%}"
        )


def main() -> None:
    online_mechanics()
    deployment_scale()


if __name__ == "__main__":
    main()

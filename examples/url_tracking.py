"""URL-popularity tracking — the paper's motivating search-engine scenario.

A provider wants to monitor, every period, how many users have a given URL in
their frequently-visited list, without learning any individual's list.  Users'
lists "change little every day" (Section 1), so the longitudinal protocol's
sparsity assumption holds with a small ``k``.

This example also compares against the Erlingsson et al. (2020) baseline on
the identical population, illustrating the sqrt(k)-vs-k separation at a
deployment-sized k.

Run:  python examples/url_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import run_erlingsson
from repro.core.vectorized import run_batch
from repro.workloads import url_tracking_scenario


def sparkline(values: np.ndarray, width: int = 64) -> str:
    """Render a count series as a terminal sparkline."""
    blocks = " .:-=+*#%@"
    bucketed = values.reshape(width, -1).mean(axis=1)
    low, high = bucketed.min(), bucketed.max()
    span = (high - low) or 1.0
    return "".join(
        blocks[int((value - low) / span * (len(blocks) - 1))] for value in bucketed
    )


def main() -> None:
    scenario = url_tracking_scenario(
        n=1_000_000, d=64, k=16, epsilon=1.0, rng=np.random.default_rng(7)
    )
    print(scenario.description)
    print()

    ours = run_batch(scenario.states, scenario.params, np.random.default_rng(1))
    theirs = run_erlingsson(scenario.states, scenario.params, np.random.default_rng(2))

    print(f"true counts   {sparkline(scenario.true_counts.astype(float))}")
    print(f"future_rand   {sparkline(ours.estimates)}")
    print(f"erlingsson    {sparkline(theirs.estimates)}")
    print()
    print(f"n = {scenario.params.n:,}; k = {scenario.params.k} "
          "(beyond the small-k crossover)")
    print(f"future_rand max error:  {ours.max_abs_error:12,.0f} "
          f"({ours.max_abs_error / scenario.params.n:.1%} of n)")
    print(f"erlingsson  max error:  {theirs.max_abs_error:12,.0f} "
          f"({theirs.max_abs_error / scenario.params.n:.1%} of n)")
    print(f"erlingsson / future_rand = {theirs.max_abs_error / ours.max_abs_error:.2f}x")


if __name__ == "__main__":
    main()
